//! E19 — the calibrated cost model and `--exchange auto` planner,
//! validated against simulated ground truth.
//!
//! Three acts:
//!
//! 1. **Calibrate** — five cheap traced probe runs (sequential scatter,
//!    windowed scatter, a relay run for the provisioning delay, a direct
//!    run for the rendezvous handshake, and a wide over-capacity relay
//!    run that saturates the relay NIC and spills to disk) are fed to
//!    `faaspipe_plan::calibrate`, and the fitted parameters plus their
//!    evidence counts are archived as `results/calibration.json`.
//! 2. **Model error** — every point of the E15 (backend × W), E16
//!    (relay shards × prewarm), and E17 (I/O window) grids is simulated
//!    AND predicted; the report lists per-point relative makespan error
//!    and asserts the mean stays ≤ 15%.
//! 3. **Planner regret** — for three dataset sizes the pipeline runs end
//!    to end with `exchange = auto` (worker count open too), and the
//!    planner's pick is compared with the best configuration of a
//!    simulated grid sweep: regret = pick / best − 1 must stay ≤ 10% at
//!    every scenario.
//!
//! ```text
//! cargo run --release -p faaspipe-bench --bin repro_autotuner [-- --quick] [--jobs N]
//! ```
//!
//! `--quick` shrinks the grids and record count to a CI smoke run and
//! skips the error/regret assertions.
//!
//! All three acts are sweep-engine grids ([`faaspipe_sweep`], `--jobs`
//! worker threads, default `FAASPIPE_JOBS` / core count): the calibration
//! probes, the 52-point model-error grid, and the per-scenario regret
//! sweeps each run as independent sims with results gathered in
//! submission order — `results/calibration.json` and the report are
//! byte-identical to a serial run.

use faaspipe_bench::{write_json, SWEEP_RECORDS};
use faaspipe_core::dag::WorkerChoice;
use faaspipe_core::pipeline::{run_methcomp_pipeline, PipelineConfig, PipelineMode};
use faaspipe_plan::{calibrate, Candidate, ModelParams, ProbeRun, ProbeSpec, Workload};
use faaspipe_shuffle::ExchangeKind;
use faaspipe_sweep::Sweep;
use faaspipe_trace::{Category, TraceData, Value};

struct ModelRow {
    experiment: String,
    workers: usize,
    io_concurrency: usize,
    backend: String,
    sim_s: f64,
    model_s: f64,
    rel_err: f64,
}

faaspipe_json::json_object! {
    ModelRow {
        req experiment,
        req workers,
        req io_concurrency,
        req backend,
        req sim_s,
        req model_s,
        req rel_err,
    }
}

struct RegretRow {
    scenario: String,
    modeled_gb: f64,
    picked_workers: usize,
    picked_io: usize,
    picked_backend: String,
    picked_s: f64,
    best_grid_backend: String,
    best_grid_s: f64,
    regret: f64,
}

faaspipe_json::json_object! {
    RegretRow {
        req scenario,
        req modeled_gb,
        req picked_workers,
        req picked_io,
        req picked_backend,
        req picked_s,
        req best_grid_backend,
        req best_grid_s,
        req regret,
    }
}

struct Report {
    mean_rel_err: f64,
    max_rel_err: f64,
    max_regret: f64,
    model_rows: Vec<ModelRow>,
    regret_rows: Vec<RegretRow>,
}

faaspipe_json::json_object! {
    Report {
        req mean_rel_err,
        req max_rel_err,
        req max_regret,
        req model_rows,
        req regret_rows,
    }
}

fn base_cfg(records: usize, modeled: u64) -> PipelineConfig {
    let mut cfg = PipelineConfig::paper_table1();
    cfg.mode = PipelineMode::PureServerless;
    cfg.physical_records = records;
    cfg.modeled_bytes = modeled;
    cfg
}

/// The wire bytes one sample-phase range read fetches for this shape.
fn sample_read_bytes(cfg: &PipelineConfig) -> f64 {
    let chunk_wire = cfg.modeled_bytes as f64 / cfg.parallelism as f64;
    (64.0 * 1024.0 * cfg.size_scale()).min(chunk_wire)
}

fn workload(cfg: &PipelineConfig) -> Workload {
    Workload {
        data_bytes: cfg.modeled_bytes as f64,
        input_chunks: cfg.parallelism,
        sample_read_bytes: sample_read_bytes(cfg),
        encode_workers: cfg.parallelism,
    }
}

/// Runs one fixed configuration; returns end-to-end simulated seconds.
fn simulate(
    records: usize,
    modeled: u64,
    workers: usize,
    k: usize,
    exchange: ExchangeKind,
    trace: bool,
) -> (f64, TraceData) {
    let mut cfg = base_cfg(records, modeled);
    cfg.workers = WorkerChoice::Fixed(workers);
    cfg.io_concurrency = k;
    cfg.exchange = exchange;
    cfg.trace = trace;
    let outcome = run_methcomp_pipeline(&cfg).expect("pipeline run");
    assert!(
        outcome.verified,
        "{} W={} K={} must verify",
        exchange, workers, k
    );
    (outcome.latency.as_secs_f64(), outcome.trace)
}

/// One traced probe run for the calibrator.
fn probe(
    records: usize,
    modeled: u64,
    workers: usize,
    k: usize,
    exchange: ExchangeKind,
) -> (ProbeSpec, TraceData) {
    let cfg = base_cfg(records, modeled);
    let spec = ProbeSpec {
        label: format!("W{}-K{}-{}", workers, k, exchange),
        workers,
        io_concurrency: k,
        data_bytes: modeled as f64,
        input_chunks: cfg.parallelism,
        sample_read_bytes: sample_read_bytes(&cfg),
    };
    let (_, trace) = simulate(records, modeled, workers, k, exchange, true);
    (spec, trace)
}

/// Reads the planner's decision back out of the trace.
fn planned_pick(trace: &TraceData) -> (usize, usize, String) {
    let span = trace
        .spans
        .iter()
        .find(|s| s.category == Category::Planner)
        .expect("auto run records a planner span");
    let num = |key: &str| -> usize {
        span.attrs
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| match v {
                Value::U64(u) => Some(*u as usize),
                _ => None,
            })
            .expect("planner span attr")
    };
    let backend = span
        .attrs
        .iter()
        .find(|(k, _)| k == "exchange")
        .and_then(|(_, v)| match v {
            Value::Str(s) => Some(s.clone()),
            _ => None,
        })
        .expect("planner span backend attr");
    (num("workers"), num("io_concurrency"), backend)
}

/// Runs the pipeline end to end with `exchange = auto` and every
/// dimension open; returns the simulated seconds and the pick.
fn auto_run(records: usize, modeled: u64, params: &ModelParams) -> (f64, usize, usize, String) {
    let mut cfg = base_cfg(records, modeled);
    cfg.workers = WorkerChoice::Auto;
    cfg.exchange = ExchangeKind::Auto;
    cfg.plan_params = Some(params.clone());
    cfg.trace = true;
    let outcome = run_methcomp_pipeline(&cfg).expect("auto pipeline run");
    assert!(outcome.verified, "auto run must verify");
    let (w, k, backend) = planned_pick(&outcome.trace);
    (outcome.latency.as_secs_f64(), w, k, backend)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let jobs = faaspipe_sweep::jobs_from_args_or_exit(&args);
    let records = if quick { 8_000 } else { SWEEP_RECORDS };
    const GB_3_5: u64 = 3_500_000_000;

    // ---- Act 1: calibrate from five cheap traced probes. ----
    // The last two exist to give the relay/direct parameters real
    // evidence: the direct run exposes the rendezvous handshake, and
    // the wide relay run both saturates the relay NIC (32 function
    // NICs > one relay NIC) and overflows its 24 GiB memory (34 GB
    // modeled), so NIC, memory capacity, and disk spill bandwidth all
    // leave the config defaults behind.
    //
    // The probes are independent traced sims; the sweep engine returns
    // them in submission order, so the calibrator sees the same probe
    // sequence (and fits the same parameters, byte-for-byte) at every
    // job count.
    const GB_34: u64 = 34_000_000_000;
    let probe_grid: [(u64, usize, usize, ExchangeKind); 5] = [
        (GB_3_5, 4, 1, ExchangeKind::Scatter),
        (GB_3_5, 4, 4, ExchangeKind::Scatter),
        (GB_3_5, 4, 1, ExchangeKind::VmRelay),
        (GB_3_5, 4, 1, ExchangeKind::Direct),
        (GB_34, 32, 4, ExchangeKind::VmRelay),
    ];
    let mut sweep: Sweep<(ProbeSpec, TraceData)> = Sweep::new();
    for (modeled, w, k, exchange) in probe_grid {
        sweep.push(format!("probe W={} K={} {}", w, k, exchange), move || {
            probe(records, modeled, w, k, exchange)
        });
    }
    let probes_raw: Vec<(ProbeSpec, TraceData)> = sweep.run_expect(jobs);
    let defaults = {
        let cfg = base_cfg(records, GB_3_5);
        ModelParams::from_configs(
            &cfg.store,
            &cfg.faas,
            &faaspipe_exchange::RelayConfig::default(),
            &faaspipe_exchange::DirectConfig::default(),
            &cfg.work,
        )
    };
    let probes: Vec<ProbeRun<'_>> = probes_raw
        .iter()
        .map(|(spec, trace)| ProbeRun { spec, trace })
        .collect();
    let calibration = calibrate(&probes, &defaults);
    println!("calibrated from {} probes:", calibration.evidence.probes);
    println!(
        "  cold start {:.3}s, orchestration {:.2}s, store latency {:.1}ms @ {:.1} MiB/s",
        calibration.params.cold_start_s,
        calibration.params.orchestration_s,
        calibration.params.store_latency_s * 1e3,
        calibration.params.store_conn_bps / (1024.0 * 1024.0)
    );
    println!(
        "  sort {:.0} / partition {:.0} / merge {:.0} / parse {:.0} / encode {:.0} MiB/s (wire), \
         relay provision {:.1}s, encode ratio {:.3}",
        calibration.params.sort_bps / (1024.0 * 1024.0),
        calibration.params.partition_bps / (1024.0 * 1024.0),
        calibration.params.merge_bps / (1024.0 * 1024.0),
        calibration.params.parse_bps / (1024.0 * 1024.0),
        calibration.params.encode_bps / (1024.0 * 1024.0),
        calibration.params.relay_provision_s,
        calibration.params.encode_output_ratio
    );
    println!(
        "  relay NIC {:.0} MiB/s / mem {:.1} GiB / disk {:.0} MiB/s ({} flows, {} spills), \
         direct handshake {:.1}ms ({} streams)",
        calibration.params.relay_nic_bps / (1024.0 * 1024.0),
        calibration.params.relay_mem_bytes / (1024.0 * 1024.0 * 1024.0),
        calibration.params.relay_disk_bps / (1024.0 * 1024.0),
        calibration.evidence.relay_flows,
        calibration.evidence.relay_spills,
        calibration.params.direct_handshake_s * 1e3,
        calibration.evidence.direct_handshakes
    );
    write_json("calibration", &calibration);
    let params = calibration.params.clone();

    // ---- Act 2: model error across the E15/E16/E17 grids. ----
    let mut grid: Vec<(&str, usize, usize, ExchangeKind)> = Vec::new();
    if quick {
        for w in [4, 8] {
            grid.push(("e15", w, 4, ExchangeKind::Scatter));
            grid.push(("e15", w, 4, ExchangeKind::Direct));
        }
        grid.push((
            "e16",
            8,
            4,
            ExchangeKind::ShardedRelay {
                shards: 2,
                prewarm: true,
            },
        ));
        grid.push(("e17", 8, 1, ExchangeKind::Scatter));
    } else {
        for w in [4, 8, 16, 32, 64] {
            for backend in ExchangeKind::ALL {
                grid.push(("e15", w, 4, backend));
            }
        }
        for w in [8, 32] {
            for shards in [2, 4, 8] {
                for prewarm in [false, true] {
                    grid.push(("e16", w, 4, ExchangeKind::ShardedRelay { shards, prewarm }));
                }
            }
        }
        for k in [1, 2, 4, 8, 16] {
            for w in [8, 32] {
                grid.push(("e17", w, k, ExchangeKind::Scatter));
                grid.push(("e17", w, k, ExchangeKind::Direct));
            }
        }
    }
    let wl = workload(&base_cfg(records, GB_3_5));
    let mut model_rows: Vec<ModelRow> = Vec::new();
    println!(
        "\nmodel vs simulation (3.5 GB, {} grid points):",
        grid.len()
    );
    println!(
        "{:<5} {:>3} {:>3}  {:<22} {:>9} {:>9} {:>8}",
        "exp", "W", "K", "backend", "sim", "model", "err"
    );
    // Simulated ground truth for every grid point, via the sweep engine;
    // model estimates are closed-form and stay on this thread.
    let mut sweep: Sweep<f64> = Sweep::new();
    for &(exp, w, k, backend) in &grid {
        sweep.push(format!("{} W={} K={} {}", exp, w, k, backend), move || {
            simulate(records, GB_3_5, w, k, backend, false).0
        });
    }
    let sims: Vec<f64> = sweep.run_expect(jobs);
    for (&(exp, w, k, backend), &sim_s) in grid.iter().zip(&sims) {
        let est = params.estimate(
            &wl,
            &Candidate {
                workers: w,
                io_concurrency: k,
                exchange: backend,
            },
        );
        let rel_err = (est.makespan_s - sim_s).abs() / sim_s;
        println!(
            "{:<5} {:>3} {:>3}  {:<22} {:>8.2}s {:>8.2}s {:>7.1}%",
            exp,
            w,
            k,
            backend.to_string(),
            sim_s,
            est.makespan_s,
            rel_err * 100.0
        );
        model_rows.push(ModelRow {
            experiment: exp.to_string(),
            workers: w,
            io_concurrency: k,
            backend: backend.to_string(),
            sim_s,
            model_s: est.makespan_s,
            rel_err,
        });
    }
    let mean_rel_err = model_rows.iter().map(|r| r.rel_err).sum::<f64>() / model_rows.len() as f64;
    let max_rel_err = model_rows.iter().map(|r| r.rel_err).fold(0.0, f64::max);
    println!(
        "mean relative makespan error {:.1}%, max {:.1}%",
        mean_rel_err * 100.0,
        max_rel_err * 100.0
    );

    // ---- Act 3: planner regret at three dataset sizes. ----
    let scenarios: &[(&str, u64)] = if quick {
        &[("3.5GB", GB_3_5)]
    } else {
        &[
            ("1.75GB", 1_750_000_000),
            ("3.5GB", GB_3_5),
            ("7GB", 7_000_000_000),
        ]
    };
    // The reference grid per scenario: a simulated sweep over the
    // strongest backends and the W/K ranges the experiments cover.
    let mut reference: Vec<(usize, usize, ExchangeKind)> = Vec::new();
    let (ws, ks): (&[usize], &[usize]) = if quick {
        (&[4, 8], &[4])
    } else {
        (&[4, 8, 16, 32, 64], &[4, 16])
    };
    for &w in ws {
        for &k in ks {
            reference.push((w, k, ExchangeKind::Scatter));
            reference.push((w, k, ExchangeKind::Coalesced));
            reference.push((w, k, ExchangeKind::Direct));
            if !quick {
                reference.push((
                    w,
                    k,
                    ExchangeKind::ShardedRelay {
                        shards: 4,
                        prewarm: true,
                    },
                ));
            }
        }
    }
    // All scenarios' reference sims and the auto runs go through the
    // engine together; results unzip back per scenario by position.
    let mut sweep: Sweep<f64> = Sweep::new();
    for &(name, modeled) in scenarios {
        for &(w, k, backend) in &reference {
            sweep.push(format!("{} W={} K={} {}", name, w, k, backend), move || {
                simulate(records, modeled, w, k, backend, false).0
            });
        }
    }
    let reference_sims: Vec<f64> = sweep.run_expect(jobs);
    let mut auto_sweep: Sweep<(f64, usize, usize, String)> = Sweep::new();
    for &(name, modeled) in scenarios {
        let params = params.clone();
        auto_sweep.push(format!("{} auto", name), move || {
            auto_run(records, modeled, &params)
        });
    }
    let auto_runs = auto_sweep.run_expect(jobs);

    let mut regret_rows: Vec<RegretRow> = Vec::new();
    for (si, &(name, modeled)) in scenarios.iter().enumerate() {
        let sims = &reference_sims[si * reference.len()..(si + 1) * reference.len()];
        let mut best_s = f64::INFINITY;
        let mut best_desc = String::new();
        for (&(w, k, backend), &sim_s) in reference.iter().zip(sims) {
            if sim_s < best_s {
                best_s = sim_s;
                best_desc = format!("W={} K={} {}", w, k, backend);
            }
        }
        let (picked_s, w, k, backend) = auto_runs[si].clone();
        let regret = picked_s / best_s - 1.0;
        println!(
            "\n{}: auto picked W={} K={} {} -> {:.2}s; grid best {} -> {:.2}s; regret {:+.1}%",
            name,
            w,
            k,
            backend,
            picked_s,
            best_desc,
            best_s,
            regret * 100.0
        );
        regret_rows.push(RegretRow {
            scenario: name.to_string(),
            modeled_gb: modeled as f64 / 1e9,
            picked_workers: w,
            picked_io: k,
            picked_backend: backend,
            picked_s,
            best_grid_backend: best_desc,
            best_grid_s: best_s,
            regret,
        });
    }
    let max_regret = regret_rows
        .iter()
        .map(|r| r.regret)
        .fold(f64::MIN, f64::max);

    if !quick {
        assert!(
            mean_rel_err <= 0.15,
            "mean relative model error {:.1}% exceeds 15%",
            mean_rel_err * 100.0
        );
        // Pin the ROADMAP-item-3 regression: the serialized rendezvous
        // at K <= 2 direct used to be under-modeled by ~20-25%; the
        // convoy term must keep these cells individually within 15%.
        for r in model_rows
            .iter()
            .filter(|r| r.backend == "direct" && r.io_concurrency <= 2)
        {
            assert!(
                r.rel_err <= 0.15,
                "direct W={} K={} model error {:.1}% exceeds 15%",
                r.workers,
                r.io_concurrency,
                r.rel_err * 100.0
            );
        }
        assert!(
            max_regret <= 0.10,
            "planner regret {:.1}% exceeds 10%",
            max_regret * 100.0
        );
    }

    write_json(
        "autotuner",
        &Report {
            mean_rel_err,
            max_rel_err,
            max_regret,
            model_rows,
            regret_rows,
        },
    );
}
