//! E8 (ablation) — sensitivity to the store's operations/s budget: the
//! paper blames "the limited throughput of object storage services
//! (e.g., IBM COS only supports a few thousand operations/s)" for
//! all-to-all bottlenecks. This sweep throttles the budget and watches
//! an over-parallelised shuffle (64 fixed workers) degrade — and the
//! autotuned worker count shrink to compensate.
//!
//! ```text
//! cargo run --release -p faaspipe-bench --bin repro_ops_sensitivity
//! ```

use faaspipe_bench::{write_json, SWEEP_RECORDS};
use faaspipe_core::dag::WorkerChoice;
use faaspipe_core::pipeline::{run_methcomp_pipeline, PipelineConfig, PipelineMode};

struct Row {
    ops_per_sec: f64,
    workers: usize,
    latency_s: f64,
    autotuned_workers: usize,
    autotuned_latency_s: f64,
}

faaspipe_json::json_object! { Row { req ops_per_sec, req workers, req latency_s, req autotuned_workers, req autotuned_latency_s } }

fn run(ops: f64, workers: WorkerChoice) -> (usize, f64) {
    let mut cfg = PipelineConfig::paper_table1();
    cfg.mode = PipelineMode::PureServerless;
    cfg.physical_records = SWEEP_RECORDS;
    cfg.workers = workers;
    cfg.store = cfg.store.with_ops_per_sec(ops);
    let outcome = run_methcomp_pipeline(&cfg).expect("pipeline run");
    (outcome.sort_workers, outcome.latency.as_secs_f64())
}

fn main() {
    let budgets = [100.0f64, 250.0, 500.0, 1_000.0, 3_000.0, 10_000.0];
    let mut rows = Vec::new();
    println!("ops/s   fixed-64-workers(s)   autotuned(workers -> s)");
    for &ops in &budgets {
        let (_, fixed) = run(ops, WorkerChoice::Fixed(64));
        let (auto_w, auto_l) = run(ops, WorkerChoice::Auto);
        println!(
            "{:>6.0}  {:>19.2}   {:>9} -> {:>7.2}",
            ops, fixed, auto_w, auto_l
        );
        rows.push(Row {
            ops_per_sec: ops,
            workers: 64,
            latency_s: fixed,
            autotuned_workers: auto_w,
            autotuned_latency_s: auto_l,
        });
    }
    // Shape: a starved ops budget punishes the W² request pattern; the
    // autotuner compensates by picking fewer workers.
    let starved = &rows[0];
    let rich = rows.last().expect("non-empty");
    assert!(
        starved.latency_s > rich.latency_s * 1.2,
        "throttling must clearly hurt the fixed-64 configuration: {} vs {}",
        starved.latency_s,
        rich.latency_s
    );
    assert!(
        starved.autotuned_workers < rich.autotuned_workers,
        "the tuner must pick fewer workers when ops are scarce"
    );
    assert!(
        starved.autotuned_latency_s < starved.latency_s,
        "tuned latency must beat the naive fixed-64 under throttling: {} vs {}",
        starved.autotuned_latency_s,
        starved.latency_s
    );
    write_json("ops_sensitivity", &rows);
}
