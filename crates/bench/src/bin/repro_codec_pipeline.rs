//! E13 (ablation) — what the special-purpose codec buys the *pipeline*:
//! run the purely serverless pipeline with METHCOMP vs the gzip-class
//! encoder and compare end-to-end latency, cost, and output volume.
//!
//! METHCOMP's §2.1 ratio claim is about bytes; this experiment shows the
//! systems consequence — a slower encoder producing 5× bigger archives
//! stretches the encode stage and the storage bill.
//!
//! ```text
//! cargo run --release -p faaspipe-bench --bin repro_codec_pipeline
//! ```

use faaspipe_bench::{write_json, SWEEP_RECORDS};
use faaspipe_core::dag::EncodeCodec;
use faaspipe_core::pipeline::{run_methcomp_pipeline, PipelineConfig, PipelineMode};

struct Row {
    codec: String,
    latency_s: f64,
    encode_stage_s: f64,
    cost_dollars: f64,
    modeled_output_gb: f64,
    compression_ratio: f64,
}

faaspipe_json::json_object! { Row { req codec, req latency_s, req encode_stage_s, req cost_dollars, req modeled_output_gb, req compression_ratio } }

fn run(codec: EncodeCodec) -> Row {
    let mut cfg = PipelineConfig::paper_table1();
    cfg.mode = PipelineMode::PureServerless;
    cfg.physical_records = SWEEP_RECORDS;
    cfg.encode_codec = codec;
    let outcome = run_methcomp_pipeline(&cfg).expect("pipeline run");
    assert!(outcome.verified);
    let encode = outcome
        .stages
        .iter()
        .find(|s| s.stage == "encode")
        .expect("encode stage");
    Row {
        codec: format!("{:?}", codec).to_lowercase(),
        latency_s: outcome.latency.as_secs_f64(),
        encode_stage_s: encode
            .finished
            .saturating_duration_since(encode.started)
            .as_secs_f64(),
        cost_dollars: outcome.cost.total().as_dollars(),
        modeled_output_gb: outcome.modeled_output_bytes as f64 / 1e9,
        compression_ratio: outcome.compression_ratio_text,
    }
}

fn main() {
    println!("codec     latency(s)  encode(s)  cost($)   output(GB)  text-ratio");
    let mut rows = Vec::new();
    for codec in [EncodeCodec::Methcomp, EncodeCodec::Gzipish] {
        let r = run(codec);
        println!(
            "{:<8}  {:>10.2}  {:>9.2}  {:>8.4}  {:>10.3}  {:>9.1}x",
            r.codec,
            r.latency_s,
            r.encode_stage_s,
            r.cost_dollars,
            r.modeled_output_gb,
            r.compression_ratio
        );
        rows.push(r);
    }
    let (mc, gz) = (&rows[0], &rows[1]);
    assert!(
        gz.modeled_output_gb > mc.modeled_output_gb * 3.0,
        "gzip archives must be much larger"
    );
    assert!(
        gz.encode_stage_s > mc.encode_stage_s,
        "gzip encoding must stretch the encode stage"
    );
    assert!(gz.latency_s > mc.latency_s);
    println!(
        "METHCOMP shaves {:.1}s of pipeline latency and {:.1}x of output volume vs the \
         gzip-class encoder",
        gz.latency_s - mc.latency_s,
        gz.modeled_output_gb / mc.modeled_output_gb
    );
    write_json("codec_pipeline", &rows);
}
