//! E17 — intra-function parallel I/O: makespan vs the per-function I/O
//! window.
//!
//! Sweeps `io_concurrency` (K) — how many store reads / exchange
//! transfers each shuffle function keeps in flight — across exchange
//! backends and worker counts. `K = 1` is the historical strictly
//! sequential data plane; raising K overlaps transfer latency with
//! compute and with other transfers until the function NIC or the
//! store's aggregate bandwidth saturates, after which the curve goes
//! flat. The sorted-run bytes are identical at every K (the window is a
//! schedule knob, not a transform — `tests/exchange_backends.rs` pins
//! that); what moves is the critical path's store-I/O share.
//!
//! ```text
//! cargo run --release -p faaspipe-bench --bin repro_io_concurrency [-- --quick] [--jobs N]
//! ```
//!
//! `--quick` shrinks the sweep to a CI smoke run (W=8, K ∈ {1,4}, the
//! two object-store backends, few records, loose assertions). The
//! K × W × backend grid runs through the [`faaspipe_sweep`] engine
//! (`--jobs` worker threads, default `FAASPIPE_JOBS` / core count);
//! output is byte-identical to serial.

use faaspipe_bench::{write_json, SWEEP_RECORDS};
use faaspipe_core::dag::WorkerChoice;
use faaspipe_core::pipeline::{run_methcomp_pipeline, PipelineConfig, PipelineMode};
use faaspipe_shuffle::ExchangeKind;
use faaspipe_sweep::Sweep;
use faaspipe_trace::critical_path;

struct Row {
    io_concurrency: usize,
    workers: usize,
    backend: String,
    latency_s: f64,
    sort_latency_s: f64,
    cost_dollars: f64,
    compute_s: f64,
    store_io_s: f64,
}

faaspipe_json::json_object! {
    Row {
        req io_concurrency,
        req workers,
        req backend,
        req latency_s,
        req sort_latency_s,
        req cost_dollars,
        req compute_s,
        req store_io_s,
    }
}

const WINDOWS: [usize; 5] = [1, 2, 4, 8, 16];

fn run(k: usize, workers: usize, records: usize, backend: ExchangeKind) -> Row {
    let mut cfg = PipelineConfig::paper_table1();
    cfg.mode = PipelineMode::PureServerless;
    cfg.physical_records = records;
    cfg.workers = WorkerChoice::Fixed(workers);
    cfg.exchange = backend;
    cfg.io_concurrency = k;
    cfg.trace = true;
    let outcome = run_methcomp_pipeline(&cfg).expect("pipeline run");
    assert!(
        outcome.verified,
        "{} W={} K={} must verify",
        backend, workers, k
    );
    let sort = outcome
        .stages
        .iter()
        .find(|s| s.stage == "sort")
        .expect("sort stage");
    let b = critical_path(&outcome.trace).expect("breakdown");
    Row {
        io_concurrency: k,
        workers,
        backend: backend.to_string(),
        latency_s: outcome.latency.as_secs_f64(),
        sort_latency_s: sort
            .finished
            .saturating_duration_since(sort.started)
            .as_secs_f64(),
        cost_dollars: outcome.cost.total().as_dollars(),
        compute_s: b.compute.as_secs_f64(),
        store_io_s: b.store_io.as_secs_f64(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let jobs = faaspipe_sweep::jobs_from_args_or_exit(&args);
    let (windows, workers_sweep, backends, records): (&[usize], &[usize], &[ExchangeKind], usize) =
        if quick {
            (
                &[1, 4],
                &[8],
                &[ExchangeKind::Scatter, ExchangeKind::Coalesced],
                8_000,
            )
        } else {
            (&WINDOWS, &[8, 32], &ExchangeKind::ALL, SWEEP_RECORDS)
        };

    // One cell per (W, backend, K) point, in curve order.
    let mut sweep: Sweep<Row> = Sweep::new();
    for &w in workers_sweep {
        for &backend in backends {
            for &k in windows {
                sweep.push(format!("{} W={} K={}", backend, w, k), move || {
                    run(k, w, records, backend)
                });
            }
        }
    }
    let mut results = sweep.run_expect(jobs).into_iter();

    let mut rows: Vec<Row> = Vec::new();
    for &w in workers_sweep {
        for &backend in backends {
            println!("\n{} @ W={} — latency by I/O window:", backend, w);
            println!(
                "{:>3}  {:>10}  {:>10}  {:>10}  {:>9}",
                "K", "latency", "sort", "store-io", "cost"
            );
            let mut curve: Vec<Row> = Vec::new();
            for &k in windows {
                let row = results.next().expect("one row per cell");
                println!(
                    "{:>3}  {:>9.2}s  {:>9.2}s  {:>9.2}s  ${:>8.4}",
                    k, row.latency_s, row.sort_latency_s, row.store_io_s, row.cost_dollars
                );
                curve.push(row);
            }

            // Widening the window must never make the makespan
            // meaningfully worse: the curve drops until the NIC / store
            // aggregate saturates, then flattens (a sub-1% wobble at the
            // plateau comes from chunk-granularity effects, not model
            // drift).
            for pair in curve.windows(2) {
                assert!(
                    pair[1].latency_s <= pair[0].latency_s * 1.01,
                    "{} W={}: K={} ({:.3}s) must not regress K={} ({:.3}s)",
                    backend,
                    w,
                    pair[1].io_concurrency,
                    pair[1].latency_s,
                    pair[0].io_concurrency,
                    pair[0].latency_s
                );
            }
            let first = &curve[0];
            let last = curve.last().expect("swept");
            if quick {
                assert!(
                    last.latency_s <= first.latency_s,
                    "{} W={}: widening the window must not slow the pipeline",
                    backend,
                    w
                );
            } else {
                // Full scale: the win must be real, and it must show up
                // where the model says it comes from — the critical
                // path's store-I/O share.
                assert!(
                    last.latency_s < first.latency_s,
                    "{} W={}: K={} must beat the sequential plane",
                    backend,
                    w,
                    last.io_concurrency
                );
                assert!(
                    last.store_io_s < first.store_io_s,
                    "{} W={}: parallel I/O must shrink the store-I/O critical-path share \
                     (K=1: {:.2}s, K={}: {:.2}s)",
                    backend,
                    w,
                    first.store_io_s,
                    last.io_concurrency,
                    last.store_io_s
                );
            }
            rows.extend(curve);
        }
    }

    write_json("io_concurrency", &rows);
}
