//! E12 (ablation) — function memory size: the paper "allocate\[s\] 2GB of
//! memory to cloud functions". On IBM CF (as on Lambda) CPU scales with
//! memory, so memory is really a *speed dial priced in GB-seconds*. This
//! sweep shows why 2 GB is a sensible point for the METHCOMP pipeline:
//! below it, CPU-bound stages crawl; above it, the extra GB-seconds buy
//! little because the pipeline turns I/O-bound.
//!
//! ```text
//! cargo run --release -p faaspipe-bench --bin repro_memory
//! ```

use faaspipe_bench::{write_json, SWEEP_RECORDS};
use faaspipe_core::pipeline::{run_methcomp_pipeline, PipelineConfig, PipelineMode};

struct Row {
    memory_mb: u32,
    cpu_share: f64,
    latency_s: f64,
    cost_dollars: f64,
}

faaspipe_json::json_object! { Row { req memory_mb, req cpu_share, req latency_s, req cost_dollars } }

fn main() {
    let mut rows = Vec::new();
    println!("memory(MB)  vCPU  latency(s)   cost($)");
    for &mb in &[512u32, 1_024, 2_048, 3_072, 4_096] {
        let mut cfg = PipelineConfig::paper_table1();
        cfg.mode = PipelineMode::PureServerless;
        cfg.physical_records = SWEEP_RECORDS;
        cfg.faas = cfg.faas.with_memory_mb(mb);
        let outcome = run_methcomp_pipeline(&cfg).expect("pipeline run");
        let row = Row {
            memory_mb: mb,
            cpu_share: cfg.faas.cpu_share(),
            latency_s: outcome.latency.as_secs_f64(),
            cost_dollars: outcome.cost.total().as_dollars(),
        };
        println!(
            "{:>10}  {:>4.2}  {:>10.2}  {:>8.4}",
            row.memory_mb, row.cpu_share, row.latency_s, row.cost_dollars
        );
        rows.push(row);
    }
    // Shape: latency is monotone non-increasing in memory; the marginal
    // gain collapses past 2 GB while cost keeps climbing.
    for pair in rows.windows(2) {
        assert!(
            pair[1].latency_s <= pair[0].latency_s + 1e-9,
            "more memory must not slow the pipeline"
        );
    }
    let gain_to_2gb = rows[0].latency_s - rows[2].latency_s;
    let gain_past_2gb = rows[2].latency_s - rows[4].latency_s;
    assert!(
        gain_to_2gb > 3.0 * gain_past_2gb,
        "most of the speedup must arrive by 2 GB: {:.1}s vs {:.1}s",
        gain_to_2gb,
        gain_past_2gb
    );
    assert!(
        rows[4].cost_dollars > rows[2].cost_dollars,
        "oversizing memory must cost more"
    );
    println!(
        "going 0.5->2 GB buys {:.1}s; 2->4 GB only {:.1}s more while cost rises {:.0}%",
        gain_to_2gb,
        gain_past_2gb,
        (rows[4].cost_dollars / rows[2].cost_dollars - 1.0) * 100.0
    );
    write_json("memory", &rows);
}
