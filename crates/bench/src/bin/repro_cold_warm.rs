//! E9 (ablation) — cold-start sensitivity: Table 1's "end-to-end latency
//! includes startup times". This run compares the pure-serverless
//! pipeline under cold containers (every stage pays scheduling + runtime
//! init) against a pre-warmed platform, across cold-start magnitudes.
//!
//! ```text
//! cargo run --release -p faaspipe-bench --bin repro_cold_warm
//! ```

use faaspipe_bench::{write_json, SWEEP_RECORDS};
use faaspipe_core::pipeline::{run_methcomp_pipeline, PipelineConfig, PipelineMode};
use faaspipe_des::SimDuration;

struct Row {
    cold_start_ms: u64,
    prewarmed: bool,
    latency_s: f64,
    cost_dollars: f64,
}

faaspipe_json::json_object! { Row { req cold_start_ms, req prewarmed, req latency_s, req cost_dollars } }

fn run(cold_ms: u64, prewarmed: bool) -> (f64, f64) {
    let mut cfg = PipelineConfig::paper_table1();
    cfg.mode = PipelineMode::PureServerless;
    cfg.physical_records = SWEEP_RECORDS;
    cfg.faas.cold_start = if prewarmed {
        cfg.faas.warm_start
    } else {
        SimDuration::from_millis(cold_ms)
    };
    let outcome = run_methcomp_pipeline(&cfg).expect("pipeline run");
    (
        outcome.latency.as_secs_f64(),
        outcome.cost.total().as_dollars(),
    )
}

fn main() {
    let mut rows = Vec::new();
    println!("cold-start(ms)  cold latency(s)  prewarmed latency(s)");
    for &ms in &[250u64, 520, 1_000, 2_000, 4_000] {
        let (cold_l, cold_c) = run(ms, false);
        let (warm_l, warm_c) = run(ms, true);
        println!("{:>14}  {:>15.2}  {:>20.2}", ms, cold_l, warm_l);
        rows.push(Row {
            cold_start_ms: ms,
            prewarmed: false,
            latency_s: cold_l,
            cost_dollars: cold_c,
        });
        rows.push(Row {
            cold_start_ms: ms,
            prewarmed: true,
            latency_s: warm_l,
            cost_dollars: warm_c,
        });
    }
    // Shape: cold starts add latency monotonically but are NOT billed
    // (cost stays flat) — warm pools shave seconds for free.
    let cold: Vec<&Row> = rows.iter().filter(|r| !r.prewarmed).collect();
    for pair in cold.windows(2) {
        assert!(
            pair[1].latency_s >= pair[0].latency_s - 1e-9,
            "latency must grow with cold-start magnitude"
        );
        assert!(
            (pair[1].cost_dollars - pair[0].cost_dollars).abs() < 2e-4,
            "cold starts are unbilled: {} vs {}",
            pair[0].cost_dollars,
            pair[1].cost_dollars
        );
    }
    let warm = rows.iter().find(|r| r.prewarmed).expect("warm row");
    let coldest = cold.last().expect("cold rows");
    assert!(warm.latency_s < coldest.latency_s);
    write_json("cold_warm", &rows);
}
