//! E1 — Reproduces **Table 1**: end-to-end latency and cost of the
//! METHCOMP pipeline in both configurations (3.5 GB modelled input,
//! parallelism 8, 2 GB functions, `bx2-8x32` VM).
//!
//! ```text
//! cargo run --release -p faaspipe-bench --bin repro_table1
//! ```

use faaspipe_bench::{write_json, PAPER_TABLE1, REPRO_RECORDS};
use faaspipe_core::pipeline::{run_methcomp_pipeline, PipelineConfig, PipelineMode};
use faaspipe_core::report::{render_table1, Table1Row};

fn main() {
    let mut rows = Vec::new();
    for mode in [PipelineMode::PureServerless, PipelineMode::VmHybrid] {
        let mut cfg = PipelineConfig::paper_table1();
        cfg.mode = mode;
        cfg.physical_records = REPRO_RECORDS;
        let outcome = run_methcomp_pipeline(&cfg).expect("pipeline run");
        assert!(outcome.verified, "outputs must verify");
        println!("--- {} ---", mode);
        println!("{}", outcome.tracker_log);
        println!("{}", outcome.cost.render());
        rows.push(Table1Row::from_outcome(&outcome));
    }

    println!("== Reproduced Table 1 (this work) ==");
    println!("{}", render_table1(&rows));
    println!("== Published Table 1 (paper) ==");
    let paper: Vec<Table1Row> = PAPER_TABLE1
        .iter()
        .map(|&(c, l, d)| Table1Row {
            configuration: c.to_string(),
            latency_s: l,
            cost_dollars: d,
            verified: true,
        })
        .collect();
    println!("{}", render_table1(&paper));

    let speedup = rows[1].latency_s / rows[0].latency_s;
    let paper_speedup = PAPER_TABLE1[1].1 / PAPER_TABLE1[0].1;
    println!(
        "latency advantage of pure serverless: {:.2}x (paper: {:.2}x)",
        speedup, paper_speedup
    );
    println!(
        "cost ratio pure/VM: {:.2} (paper: {:.2})",
        rows[0].cost_dollars / rows[1].cost_dollars,
        PAPER_TABLE1[0].2 / PAPER_TABLE1[1].2
    );
    assert!(
        rows[0].latency_s < rows[1].latency_s,
        "the paper's headline must reproduce: serverless wins on latency"
    );
    write_json("table1", &rows);
}
