//! E4 — METHCOMP's compression claim: "about 10x better compression
//! ratio than gzip" on methylation data (paper §2.1).
//!
//! Measures compressed sizes of METHCOMP vs the gzip-class baseline
//! (`faaspipe_codec::gzipish`) on synthetic WGBS bedMethyl text at
//! several sizes, on real bytes (no simulation).
//!
//! ```text
//! cargo run --release -p faaspipe-bench --bin repro_compression
//! ```

use faaspipe_bench::write_json;
use faaspipe_codec::gzipish;
use faaspipe_methcomp::codec as mc;
use faaspipe_methcomp::synth::Synthesizer;

struct Row {
    records: usize,
    text_bytes: usize,
    gzipish_bytes: usize,
    methcomp_bytes: usize,
    gzipish_ratio: f64,
    methcomp_ratio: f64,
    advantage: f64,
}

faaspipe_json::json_object! { Row { req records, req text_bytes, req gzipish_bytes, req methcomp_bytes, req gzipish_ratio, req methcomp_ratio, req advantage } }

fn main() {
    let mut rows = Vec::new();
    println!("records   text(MB)  gz(MB)  mc(MB)  gz-ratio  mc-ratio  mc/gz advantage");
    for (i, records) in [20_000usize, 60_000, 150_000, 300_000].iter().enumerate() {
        let ds = Synthesizer::new(40 + i as u64).generate_records(*records);
        let text = ds.to_text();
        let gz = gzipish::compress(text.as_bytes());
        let mcb = mc::compress(&ds);
        // Sanity: both must round-trip.
        assert_eq!(gzipish::decompress(&gz).expect("gz ok"), text.as_bytes());
        assert_eq!(mc::decompress(&mcb).expect("mc ok"), ds);
        let row = Row {
            records: *records,
            text_bytes: text.len(),
            gzipish_bytes: gz.len(),
            methcomp_bytes: mcb.len(),
            gzipish_ratio: text.len() as f64 / gz.len() as f64,
            methcomp_ratio: text.len() as f64 / mcb.len() as f64,
            advantage: gz.len() as f64 / mcb.len() as f64,
        };
        println!(
            "{:>7}  {:>8.2}  {:>6.2}  {:>6.2}  {:>8.2}  {:>8.2}  {:>10.2}x",
            row.records,
            row.text_bytes as f64 / 1e6,
            row.gzipish_bytes as f64 / 1e6,
            row.methcomp_bytes as f64 / 1e6,
            row.gzipish_ratio,
            row.methcomp_ratio,
            row.advantage
        );
        rows.push(row);
    }
    let min_adv = rows.iter().map(|r| r.advantage).fold(f64::MAX, f64::min);
    println!(
        "METHCOMP beats the gzip-class baseline by ≥{:.1}x on every size (paper: ~10x)",
        min_adv
    );
    assert!(
        min_adv > 4.0,
        "the special-purpose codec must clearly dominate: got {:.2}x",
        min_adv
    );
    write_json("compression", &rows);
}
