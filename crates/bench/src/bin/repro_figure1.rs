//! E2 — Reproduces **Figure 1** as executable artifacts: the two
//! pipeline architectures (A: hybrid VM sort; B: purely serverless) with
//! their per-stage timelines and data flows through object storage.
//!
//! The paper's figure is an architecture diagram; the faithful executable
//! equivalent is the stage topology plus where every byte moved, which
//! this binary prints as an annotated timeline per configuration.
//!
//! ```text
//! cargo run --release -p faaspipe-bench --bin repro_figure1
//! ```

use serde::Serialize;

use faaspipe_bench::{write_json, REPRO_RECORDS};
use faaspipe_core::pipeline::{run_methcomp_pipeline, PipelineConfig, PipelineMode};

#[derive(Serialize)]
struct StageSpan {
    configuration: String,
    stage: String,
    start_s: f64,
    end_s: f64,
    workers: usize,
    modeled_output_gb: f64,
}

fn bar(start: f64, end: f64, total: f64, width: usize) -> String {
    let a = ((start / total) * width as f64) as usize;
    let b = (((end / total) * width as f64) as usize).max(a + 1);
    format!(
        "{}{}{}",
        " ".repeat(a.min(width)),
        "#".repeat((b - a).min(width - a.min(width))),
        " ".repeat(width.saturating_sub(b))
    )
}

fn main() {
    let mut spans = Vec::new();
    for (label, mode) in [
        ("A: hybrid (VM sort)", PipelineMode::VmHybrid),
        ("B: purely serverless", PipelineMode::PureServerless),
    ] {
        let mut cfg = PipelineConfig::paper_table1();
        cfg.mode = mode;
        cfg.physical_records = REPRO_RECORDS;
        let outcome = run_methcomp_pipeline(&cfg).expect("pipeline run");
        let total = outcome.latency.as_secs_f64();
        println!("=== Figure 1 {} — {:.2}s end to end ===", label, total);
        println!("data exchange: every stage reads/writes IBM-COS-like object storage");
        for s in &outcome.stages {
            let start = s.started.as_secs_f64();
            let end = s.finished.as_secs_f64();
            println!(
                "  {:<8} [{}] {:>7.2}s..{:>7.2}s  workers={}",
                s.stage,
                bar(start, end, total, 50),
                start,
                end,
                s.workers_used
            );
            spans.push(StageSpan {
                configuration: label.to_string(),
                stage: s.stage.clone(),
                start_s: start,
                end_s: end,
                workers: s.workers_used,
                modeled_output_gb: s.output_bytes as f64 * cfg.size_scale() / 1e9,
            });
        }
        println!("{}", outcome.tracker_log);
    }
    write_json("figure1", &spans);
}
