//! E2 — Reproduces **Figure 1** as executable artifacts: the two
//! pipeline architectures (A: hybrid VM sort; B: purely serverless) with
//! their per-stage timelines and data flows through object storage.
//!
//! The paper's figure is an architecture diagram; the faithful executable
//! equivalent is the stage topology plus where every byte moved, which
//! this binary prints as an annotated timeline per configuration, plus
//! the recorded execution trace: a per-stage timeline, the critical-path
//! makespan attribution, and a Chrome-trace/Perfetto JSON covering both
//! topologies (`--trace-out <path>`, default
//! `results/figure1_trace.json`).
//!
//! ```text
//! cargo run --release -p faaspipe-bench --bin repro_figure1 [-- --trace-out trace.json]
//! ```

use faaspipe_bench::{results_dir, write_json, REPRO_RECORDS};
use faaspipe_core::pipeline::{run_methcomp_pipeline, PipelineConfig, PipelineMode};
use faaspipe_trace::{chrome_trace_json, critical_path, render_timeline, TraceData};

struct StageSpan {
    configuration: String,
    stage: String,
    start_s: f64,
    end_s: f64,
    workers: usize,
    modeled_output_gb: f64,
}

faaspipe_json::json_object! { StageSpan { req configuration, req stage, req start_s, req end_s, req workers, req modeled_output_gb } }

fn bar(start: f64, end: f64, total: f64, width: usize) -> String {
    let a = ((start / total) * width as f64) as usize;
    let b = (((end / total) * width as f64) as usize).max(a + 1);
    format!(
        "{}{}{}",
        " ".repeat(a.min(width)),
        "#".repeat((b - a).min(width - a.min(width))),
        " ".repeat(width.saturating_sub(b))
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1).cloned())
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| results_dir().join("figure1_trace.json"));
    let mut spans = Vec::new();
    let mut traces: Vec<(&str, TraceData)> = Vec::new();
    for (label, mode) in [
        ("A: hybrid (VM sort)", PipelineMode::VmHybrid),
        ("B: purely serverless", PipelineMode::PureServerless),
    ] {
        let mut cfg = PipelineConfig::paper_table1();
        cfg.mode = mode;
        cfg.physical_records = REPRO_RECORDS;
        cfg.trace = true;
        let outcome = run_methcomp_pipeline(&cfg).expect("pipeline run");
        let total = outcome.latency.as_secs_f64();
        println!("=== Figure 1 {} — {:.2}s end to end ===", label, total);
        println!("data exchange: every stage reads/writes IBM-COS-like object storage");
        for s in &outcome.stages {
            let start = s.started.as_secs_f64();
            let end = s.finished.as_secs_f64();
            println!(
                "  {:<8} [{}] {:>7.2}s..{:>7.2}s  workers={}",
                s.stage,
                bar(start, end, total, 50),
                start,
                end,
                s.workers_used
            );
            spans.push(StageSpan {
                configuration: label.to_string(),
                stage: s.stage.clone(),
                start_s: start,
                end_s: end,
                workers: s.workers_used,
                modeled_output_gb: s.output_bytes as f64 * cfg.size_scale() / 1e9,
            });
        }
        println!("{}", outcome.tracker_log);
        println!("traced stage timeline:");
        print!("{}", render_timeline(&outcome.trace));
        let breakdown = critical_path(&outcome.trace).expect("traced run has a breakdown");
        assert_eq!(
            breakdown.total(),
            breakdown.makespan,
            "critical-path buckets must sum to the makespan"
        );
        println!("{}", breakdown.render());
        traces.push((label, outcome.trace));
    }
    let labelled: Vec<(&str, &TraceData)> =
        traces.iter().map(|(label, data)| (*label, data)).collect();
    let chrome = chrome_trace_json(&TraceData::merged(&labelled));
    std::fs::write(&trace_out, &chrome).expect("write chrome trace");
    eprintln!("wrote {}", trace_out.display());
    write_json("figure1", &spans);
}
