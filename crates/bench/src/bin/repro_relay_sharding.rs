//! E16 — the sharded relay fleet: scaling the VM-driven data plane out
//! instead of up.
//!
//! The paper's Table-1 comparison pits coalesced object storage against
//! a *single* relay VM, whose one NIC is the bottleneck at high W. This
//! sweep runs the purely-serverless pipeline over W ∈ {8..128} ×
//! shards ∈ {1,2,4,8}, cold and pre-warmed, against the coalesced-COS
//! and single-relay baselines — turning the paper's two-point comparison
//! into a scaling frontier: how many relay VMs (and how many dollars of
//! per-second billing) does it take to close the latency gap, and what
//! does pre-warming the fleet under the sample phase buy on the critical
//! path?
//!
//! ```text
//! cargo run --release -p faaspipe-bench --bin repro_relay_sharding [-- --quick] [--jobs N]
//! ```
//!
//! `--quick` shrinks the sweep to a CI smoke run (small W, few records,
//! no frontier assertions). The W × shards × prewarm grid runs through
//! the [`faaspipe_sweep`] engine (`--jobs` worker threads, default
//! `FAASPIPE_JOBS` / core count); output is byte-identical to serial.

use faaspipe_bench::{write_json, SWEEP_RECORDS};
use faaspipe_core::dag::WorkerChoice;
use faaspipe_core::pipeline::{run_methcomp_pipeline, PipelineConfig, PipelineMode};
use faaspipe_shuffle::ExchangeKind;
use faaspipe_sweep::Sweep;
use faaspipe_trace::critical_path;

struct Row {
    workers: usize,
    backend: String,
    shards: usize,
    prewarm: bool,
    latency_s: f64,
    sort_latency_s: f64,
    cost_dollars: f64,
    compute_s: f64,
    store_io_s: f64,
    cold_start_s: f64,
    queueing_s: f64,
    other_s: f64,
}

faaspipe_json::json_object! {
    Row {
        req workers,
        req backend,
        req shards,
        req prewarm,
        req latency_s,
        req sort_latency_s,
        req cost_dollars,
        req compute_s,
        req store_io_s,
        req cold_start_s,
        req queueing_s,
        req other_s,
    }
}

const SHARDS: [usize; 4] = [1, 2, 4, 8];

fn run(workers: usize, records: usize, backend: ExchangeKind) -> Row {
    let mut cfg = PipelineConfig::paper_table1();
    cfg.mode = PipelineMode::PureServerless;
    cfg.physical_records = records;
    cfg.workers = WorkerChoice::Fixed(workers);
    cfg.exchange = backend;
    cfg.trace = true;
    let outcome = run_methcomp_pipeline(&cfg).expect("pipeline run");
    assert!(outcome.verified, "{} W={} must verify", backend, workers);
    let sort = outcome
        .stages
        .iter()
        .find(|s| s.stage == "sort")
        .expect("sort stage");
    let b = critical_path(&outcome.trace).expect("breakdown");
    let (shards, prewarm) = match backend {
        ExchangeKind::ShardedRelay { shards, prewarm } => (shards, prewarm),
        ExchangeKind::VmRelay => (1, false),
        _ => (0, false),
    };
    Row {
        workers,
        backend: backend.to_string(),
        shards,
        prewarm,
        latency_s: outcome.latency.as_secs_f64(),
        sort_latency_s: sort
            .finished
            .saturating_duration_since(sort.started)
            .as_secs_f64(),
        cost_dollars: outcome.cost.total().as_dollars(),
        compute_s: b.compute.as_secs_f64(),
        store_io_s: b.store_io.as_secs_f64(),
        cold_start_s: b.cold_start.as_secs_f64(),
        queueing_s: b.queueing.as_secs_f64(),
        other_s: b.other.as_secs_f64(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let jobs = faaspipe_sweep::jobs_from_args_or_exit(&args);
    let (worker_sweep, shard_sweep, records): (&[usize], &[usize], usize) = if quick {
        (&[8], &[1, 2], 8_000)
    } else {
        (&[8, 16, 32, 64, 128], &SHARDS, SWEEP_RECORDS)
    };

    // Every (W, backend[, shards, prewarm]) point is an independent sim;
    // cells are pushed in row order so the returned vector *is* `rows`.
    let mut sweep: Sweep<Row> = Sweep::new();
    for &w in worker_sweep {
        sweep.push(format!("W={} coalesced", w), move || {
            run(w, records, ExchangeKind::Coalesced)
        });
        sweep.push(format!("W={} vm_relay", w), move || {
            run(w, records, ExchangeKind::VmRelay)
        });
        for &n in shard_sweep {
            for prewarm in [false, true] {
                let kind = ExchangeKind::ShardedRelay { shards: n, prewarm };
                sweep.push(format!("W={} {}", w, kind), move || run(w, records, kind));
            }
        }
    }
    let rows: Vec<Row> = sweep.run_expect(jobs);

    let mut ordered = rows.iter();
    println!("makespan seconds (cost $); relay shards cold → prewarm:");
    for &w in worker_sweep {
        let cos = ordered.next().expect("coalesced row");
        let relay = ordered.next().expect("relay row");
        println!(
            "W={:<3}  coalesced {:.2}s (${:.4})   vm_relay {:.2}s (${:.4})",
            w, cos.latency_s, cos.cost_dollars, relay.latency_s, relay.cost_dollars
        );
        for &n in shard_sweep {
            let cold = ordered.next().expect("cold shard row");
            let warm = ordered.next().expect("warm shard row");
            println!(
                "       shards={:<2} {:.2}s (${:.4}, cold-start {:.1}s) → {:.2}s (${:.4}, cold-start {:.1}s)",
                n,
                cold.latency_s,
                cold.cost_dollars,
                cold.cold_start_s,
                warm.latency_s,
                warm.cost_dollars,
                warm.cold_start_s
            );
        }
    }

    let sharded = |w: usize, n: usize, prewarm: bool| -> &Row {
        rows.iter()
            .find(|r| {
                r.workers == w
                    && r.shards == n
                    && r.prewarm == prewarm
                    && r.backend.starts_with("sharded")
            })
            .expect("swept config")
    };

    // Pre-warming must (a) never lose to a cold boot of the same shape
    // and (b) take provisioning off the critical path: the residual
    // relay-wait is what sampling could not hide, strictly less than
    // the full boot.
    for &w in worker_sweep {
        for &n in shard_sweep {
            let cold = sharded(w, n, false);
            let warm = sharded(w, n, true);
            assert!(
                cold.cold_start_s >= 44.0,
                "W={} shards={}: a cold fleet pays full provisioning on the critical path, got {:.2}s",
                w, n, cold.cold_start_s
            );
            assert!(
                warm.cold_start_s < cold.cold_start_s,
                "W={} shards={}: prewarm must shrink critical-path cold start ({:.2}s vs {:.2}s)",
                w,
                n,
                warm.cold_start_s,
                cold.cold_start_s
            );
            assert!(
                warm.latency_s < cold.latency_s,
                "W={} shards={}: prewarm must cut the makespan ({:.2}s vs {:.2}s)",
                w,
                n,
                warm.latency_s,
                cold.latency_s
            );
        }
    }

    if !quick {
        // The frontier: at the highest fan-in, more shards = more
        // aggregate relay NIC bandwidth = monotonically better makespan.
        let top_w = *worker_sweep.last().expect("sweep");
        for pair in shard_sweep.windows(2) {
            let (fewer, more) = (
                sharded(top_w, pair[0], false),
                sharded(top_w, pair[1], false),
            );
            assert!(
                more.latency_s <= fewer.latency_s + 0.5,
                "W={}: {} shards ({:.2}s) must not lose to {} shards ({:.2}s)",
                top_w,
                pair[1],
                more.latency_s,
                pair[0],
                fewer.latency_s
            );
        }
        let one = sharded(top_w, 1, false);
        let eight = sharded(top_w, 8, false);
        assert!(
            eight.latency_s < one.latency_s,
            "W={}: the full fleet ({:.2}s) must beat a single shard ({:.2}s)",
            top_w,
            eight.latency_s,
            one.latency_s
        );
        println!(
            "\nfrontier at W={}: 1 shard {:.2}s/${:.4} → 8 shards {:.2}s/${:.4}",
            top_w, one.latency_s, one.cost_dollars, eight.latency_s, eight.cost_dollars
        );
    }

    write_json("relay_sharding", &rows);
}
