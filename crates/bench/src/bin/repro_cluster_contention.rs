//! E18 — multi-tenant cluster contention: the offered-load → goodput
//! knee, and admission control vs a noisy neighbor.
//!
//! The paper measures one pipeline against an idle cloud. This
//! experiment runs the pipeline as a *service*: four tenants submit
//! Table-1-shaped runs open-loop against shared infrastructure that is
//! deliberately smaller than the defaults (function slots and store
//! ops/s shrunk so saturation is reachable), swept across arrival rates
//! and across two data-exchange backends (coalesced COS vs a pre-warmed
//! 4-shard relay fleet). Past the knee the p99 sojourn inflects from
//! "about the isolated latency" to "queueing dominates" while goodput
//! flattens at the service capacity.
//!
//! The second scenario adds a noisy neighbor — one tenant submitting
//! W = 48 runs into the same 64-slot platform three victims share — and
//! shows per-tenant admission control (a concurrency cap plus a
//! store-ops budget on the noisy tenant) restoring the victims' p99.
//!
//! ```text
//! cargo run --release -p faaspipe-bench --bin repro_cluster_contention [-- --quick] [--jobs N]
//! ```
//!
//! `--quick` shrinks both scenarios to a CI smoke run (two rates, short
//! horizon, no knee/noisy assertions). Each (backend, rate) knee point
//! and each noisy-neighbor scenario is an independent cluster sim; they
//! run through the [`faaspipe_sweep`] engine (`--jobs` worker threads,
//! default `FAASPIPE_JOBS` / core count) with serial-identical output.

use faaspipe_bench::write_json;
use faaspipe_cluster::{
    run_cluster, AdmissionPolicy, ArrivalProcess, ClusterConfig, ClusterReport, TenantSpec,
};
use faaspipe_core::dag::WorkerChoice;
use faaspipe_des::SimDuration;
use faaspipe_shuffle::ExchangeKind;
use faaspipe_sweep::Sweep;

struct KneeRow {
    backend: String,
    rate_per_sec: f64,
    submitted: usize,
    completed: usize,
    p50_s: f64,
    p99_s: f64,
    p999_s: f64,
    mean_queue_s: f64,
    offered_rate: f64,
    goodput_rate: f64,
    fairness: f64,
    makespan_s: f64,
    cost_dollars: f64,
}

faaspipe_json::json_object! {
    KneeRow {
        req backend,
        req rate_per_sec,
        req submitted,
        req completed,
        req p50_s,
        req p99_s,
        req p999_s,
        req mean_queue_s,
        req offered_rate,
        req goodput_rate,
        req fairness,
        req makespan_s,
        req cost_dollars,
    }
}

struct NoisyRow {
    scenario: String,
    tenant: String,
    submitted: usize,
    completed: usize,
    p50_s: f64,
    p99_s: f64,
    mean_queue_s: f64,
    bill_dollars: f64,
}

faaspipe_json::json_object! {
    NoisyRow {
        req scenario,
        req tenant,
        req submitted,
        req completed,
        req p50_s,
        req p99_s,
        req mean_queue_s,
        req bill_dollars,
    }
}

/// Shared-cloud sizing for the sweep: small enough that the arrival
/// sweep crosses saturation. 32 function slots serve ~4 concurrent
/// 8-worker runs; 250 store ops/s adds request queueing near the knee.
fn base_cluster(
    tenants: Vec<TenantSpec>,
    arrivals: ArrivalProcess,
    records: usize,
) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(tenants, arrivals);
    cfg.physical_records = records;
    cfg.faas.max_concurrency = 32;
    cfg.store.ops_per_sec = 250.0;
    cfg.store.ops_burst = 250.0;
    cfg
}

fn knee_point(
    backend: ExchangeKind,
    rate: f64,
    horizon_s: u64,
    records: usize,
) -> (KneeRow, ClusterReport) {
    let tenants: Vec<TenantSpec> = (0..4)
        .map(|i| {
            let mut t = TenantSpec::new(format!("t{}", i));
            t.exchange = backend;
            t
        })
        .collect();
    let arrivals = ArrivalProcess::Poisson {
        rate_per_sec: rate,
        horizon: SimDuration::from_secs(horizon_s),
    };
    let report = run_cluster(&base_cluster(tenants, arrivals, records)).expect("cluster run");
    // Pool every tenant's sojourns — the tenants are identical, the
    // sweep is about the cluster-wide response curve.
    let sojourns: Vec<f64> = report
        .runs
        .iter()
        .filter(|r| r.ok)
        .map(|r| r.sojourn().as_secs_f64())
        .collect();
    let queues: Vec<f64> = report
        .runs
        .iter()
        .filter(|r| r.ok)
        .map(|r| r.queue_wait().as_secs_f64())
        .collect();
    let row = KneeRow {
        backend: backend.to_string(),
        rate_per_sec: rate,
        submitted: report.submitted,
        completed: report.completed,
        p50_s: faaspipe_cluster::percentile(&sojourns, 50.0),
        p99_s: faaspipe_cluster::percentile(&sojourns, 99.0),
        p999_s: faaspipe_cluster::percentile(&sojourns, 99.9),
        mean_queue_s: if queues.is_empty() {
            0.0
        } else {
            queues.iter().sum::<f64>() / queues.len() as f64
        },
        offered_rate: report.offered_rate,
        goodput_rate: report.goodput_rate,
        fairness: report.fairness,
        makespan_s: report.makespan.as_secs_f64(),
        cost_dollars: report.cost.total().as_dollars(),
    };
    (row, report)
}

/// Victims pooled p99 across the three W = 8 tenants.
fn victim_p99(report: &ClusterReport) -> f64 {
    let sojourns: Vec<f64> = report
        .runs
        .iter()
        .filter(|r| r.ok && r.tenant != "noisy")
        .map(|r| r.sojourn().as_secs_f64())
        .collect();
    faaspipe_cluster::percentile(&sojourns, 99.0)
}

fn noisy_scenario(
    admission: bool,
    horizon_s: u64,
    records: usize,
) -> (Vec<NoisyRow>, ClusterReport) {
    let mut tenants: Vec<TenantSpec> = (0..3).map(|i| TenantSpec::new(format!("v{}", i))).collect();
    let mut noisy = TenantSpec::new("noisy");
    noisy.weight = 3.0;
    noisy.parallelism = 48;
    noisy.workers = WorkerChoice::Fixed(48);
    if admission {
        noisy.admission = AdmissionPolicy::unlimited()
            .with_max_concurrent(1)
            .with_store_ops(60.0, 60.0);
    }
    tenants.push(noisy);

    let arrivals = ArrivalProcess::Poisson {
        rate_per_sec: 0.05,
        horizon: SimDuration::from_secs(horizon_s),
    };
    let mut cfg = ClusterConfig::new(tenants, arrivals);
    cfg.physical_records = records;
    cfg.faas.max_concurrency = 64;
    cfg.store.ops_per_sec = 250.0;
    cfg.store.ops_burst = 250.0;
    let report = run_cluster(&cfg).expect("noisy cluster run");
    let scenario = if admission {
        "admission"
    } else {
        "no_admission"
    };
    let rows = report
        .tenants
        .iter()
        .map(|t| NoisyRow {
            scenario: scenario.to_string(),
            tenant: t.tenant.clone(),
            submitted: t.submitted,
            completed: t.completed,
            p50_s: t.p50,
            p99_s: t.p99,
            mean_queue_s: t.mean_queue,
            bill_dollars: t.bill.as_dollars(),
        })
        .collect();
    (rows, report)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let jobs = faaspipe_sweep::jobs_from_args_or_exit(&args);
    let (rates, horizon_s, records): (&[f64], u64, usize) = if quick {
        (&[0.02, 0.05], 150, 1_500)
    } else {
        (&[0.01, 0.02, 0.04, 0.08, 0.12], 600, 5_000)
    };
    let backends = [
        ExchangeKind::Coalesced,
        ExchangeKind::ShardedRelay {
            shards: 4,
            prewarm: true,
        },
    ];

    // --- Scenario 1: the offered-load → goodput knee. ---
    // Each (backend, rate) point is a full cluster sim; run the grid
    // through the sweep engine, then print in submission order.
    let mut sweep: Sweep<KneeRow> = Sweep::new();
    for backend in backends {
        for &rate in rates {
            sweep.push(format!("{} rate={}", backend, rate), move || {
                knee_point(backend, rate, horizon_s, records).0
            });
        }
    }
    let knee_rows: Vec<KneeRow> = sweep.run_expect(jobs);
    println!("knee sweep: 4 tenants, 32 fn slots, 250 store ops/s");
    println!("backend             rate/s   runs   p50 s    p99 s  goodput/s fairness");
    for row in &knee_rows {
        println!(
            "{:<18} {:>7.3} {:>6} {:>7.1} {:>8.1} {:>10.3} {:>8.3}",
            row.backend,
            row.rate_per_sec,
            row.submitted,
            row.p50_s,
            row.p99_s,
            row.goodput_rate,
            row.fairness,
        );
    }

    if !quick {
        for backend in backends {
            let name = backend.to_string();
            let series: Vec<&KneeRow> = knee_rows.iter().filter(|r| r.backend == name).collect();
            let (first, last) = (series.first().expect("rows"), series.last().expect("rows"));
            // The knee: past saturation the p99 sojourn inflects while
            // goodput decouples from offered load.
            assert!(
                last.p99_s > 3.0 * first.p99_s,
                "{}: p99 must inflect across the sweep ({:.1}s -> {:.1}s)",
                name,
                first.p99_s,
                last.p99_s
            );
            assert!(
                last.goodput_rate < 0.9 * last.offered_rate,
                "{}: goodput must fall behind offered load past the knee \
                 ({:.3}/s goodput vs {:.3}/s offered)",
                name,
                last.goodput_rate,
                last.offered_rate
            );
            assert!(
                first.goodput_rate > 0.5 * first.offered_rate,
                "{}: below the knee the cluster must keep up ({:.3}/s vs {:.3}/s)",
                name,
                first.goodput_rate,
                first.offered_rate
            );
        }
    }
    write_json("repro_cluster_contention", &knee_rows);

    // --- Scenario 2: noisy neighbor, without and with admission. ---
    // The two scenarios are independent sims too — a two-cell sweep.
    let noisy_horizon = if quick { 160 } else { 600 };
    let mut sweep: Sweep<(Vec<NoisyRow>, ClusterReport)> = Sweep::new();
    for admission in [false, true] {
        sweep.push(format!("noisy admission={}", admission), move || {
            noisy_scenario(admission, noisy_horizon, records)
        });
    }
    let mut noisy = sweep.run_expect(jobs).into_iter();
    let (mut rows_off, report_off) = noisy.next().expect("no-admission scenario");
    let (rows_on, report_on) = noisy.next().expect("admission scenario");
    println!("\nnoisy neighbor: 3 victims (W=8) + 1 noisy (W=48), 64 fn slots");
    println!("--- without admission ---\n{}", report_off.render());
    println!("--- with admission (noisy: 1 concurrent run, 60 store ops/s) ---");
    println!("{}", report_on.render());
    let (off, on) = (victim_p99(&report_off), victim_p99(&report_on));
    println!(
        "victim pooled p99: {:.1} s -> {:.1} s ({:+.1}%)",
        off,
        on,
        (on / off - 1.0) * 100.0
    );
    if !quick {
        assert!(
            on < 0.9 * off,
            "admission must improve the victims' p99 by >10% ({:.1}s -> {:.1}s)",
            off,
            on
        );
        // Every individual victim must be better off, not just the pool.
        // (Cluster-wide Jain over sojourns *falls* here by design: the
        // throttled noisy tenant absorbs the queueing its own open-loop
        // arrivals create, instead of spreading it over the victims.)
        for victim in ["v0", "v1", "v2"] {
            let p99_off = report_off.tenant(victim).expect("victim row").p99;
            let p99_on = report_on.tenant(victim).expect("victim row").p99;
            assert!(
                p99_on < p99_off,
                "{}: admission must not leave any victim worse off ({:.1}s -> {:.1}s)",
                victim,
                p99_off,
                p99_on
            );
        }
    }
    rows_off.extend(rows_on);
    write_json("repro_cluster_noisy", &rows_off);
}
