//! E10 (ablation) — Primula's "I/O optimizations for serverless
//! all-to-all communication": the coalesced exchange (one intermediate
//! object per mapper + byte-range gathers) versus the naive W² scatter.
//!
//! The optimization's value grows with the worker count: at W workers the
//! scatter pattern issues W² class-A PUTs and serializes W request
//! latencies inside every mapper.
//!
//! ```text
//! cargo run --release -p faaspipe-bench --bin repro_exchange
//! ```

use faaspipe_bench::{write_json, SWEEP_RECORDS};
use faaspipe_core::dag::WorkerChoice;
use faaspipe_core::pipeline::{run_methcomp_pipeline, PipelineConfig, PipelineMode};
use faaspipe_shuffle::ExchangeKind;

struct Row {
    workers: usize,
    strategy: String,
    latency_s: f64,
    sort_latency_s: f64,
    cost_dollars: f64,
}

faaspipe_json::json_object! { Row { req workers, req strategy, req latency_s, req sort_latency_s, req cost_dollars } }

fn run(workers: usize, exchange: ExchangeKind) -> Row {
    let mut cfg = PipelineConfig::paper_table1();
    cfg.mode = PipelineMode::PureServerless;
    cfg.physical_records = SWEEP_RECORDS;
    cfg.workers = WorkerChoice::Fixed(workers);
    cfg.exchange = exchange;
    let outcome = run_methcomp_pipeline(&cfg).expect("pipeline run");
    let sort = outcome
        .stages
        .iter()
        .find(|s| s.stage == "sort")
        .expect("sort stage");
    Row {
        workers,
        strategy: format!("{:?}", exchange).to_lowercase(),
        latency_s: outcome.latency.as_secs_f64(),
        sort_latency_s: sort
            .finished
            .saturating_duration_since(sort.started)
            .as_secs_f64(),
        cost_dollars: outcome.cost.total().as_dollars(),
    }
}

fn main() {
    let mut rows = Vec::new();
    println!("workers  scatter(s)   coalesced(s)   scatter($)  coalesced($)");
    for &w in &[8usize, 16, 32, 64] {
        let a = run(w, ExchangeKind::Scatter);
        let b = run(w, ExchangeKind::Coalesced);
        println!(
            "{:>7}  {:>10.2}  {:>13.2}  {:>10.4}  {:>12.4}",
            w, a.latency_s, b.latency_s, a.cost_dollars, b.cost_dollars
        );
        rows.push(a);
        rows.push(b);
    }
    // Shape: coalescing never loses, and at high worker counts it clearly
    // wins on both latency and request cost.
    for w in [8usize, 16, 32, 64] {
        let scatter = rows
            .iter()
            .find(|r| r.workers == w && r.strategy == "scatter")
            .expect("scatter row");
        let coal = rows
            .iter()
            .find(|r| r.workers == w && r.strategy == "coalesced")
            .expect("coalesced row");
        assert!(
            coal.latency_s <= scatter.latency_s + 0.5,
            "coalescing must not lose at {} workers",
            w
        );
        assert!(
            coal.cost_dollars < scatter.cost_dollars,
            "coalescing saves class-A requests at {} workers",
            w
        );
    }
    let s64 = rows
        .iter()
        .find(|r| r.workers == 64 && r.strategy == "scatter")
        .expect("scatter64");
    let c64 = rows
        .iter()
        .find(|r| r.workers == 64 && r.strategy == "coalesced")
        .expect("coalesced64");
    println!(
        "at 64 workers coalescing saves {:.1}s of latency and ${:.4} of requests",
        s64.latency_s - c64.latency_s,
        s64.cost_dollars - c64.cost_dollars
    );
    write_json("exchange", &rows);
}
