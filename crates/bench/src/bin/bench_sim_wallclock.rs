//! BENCH_sim / BENCH_host — wall-clock cost of the simulator itself.
//!
//! Two host-time (not virtual-time) measurements of the simulator:
//!
//! * **BENCH_sim** — a small fixed batch of *traced* pipeline runs shaped
//!   like the E15 `--quick` smoke: both object-store exchange layouts at
//!   two worker counts. Catches tracing-path regressions.
//! * **BENCH_host** — the scaling trajectory the stackless scheduler is
//!   sized for: untraced coalesced runs at W ∈ {64, 256, 1024, 4096,
//!   8192, 16384}. Each row records the wall clock plus the simulator's
//!   own gauges (events dispatched, peak live processes, pool threads),
//!   the host's CPU/context-switch counters, the per-event unit cost
//!   (µs of wall per dispatched event — flat means the scheduler scales
//!   with what changed), and a per-row peak-RSS gauge (`VmHWM`, reset
//!   before each run), so a slowdown can be split into "more work" vs
//!   "same work, slower" and a memory blow-up is visible per width.
//!
//! `--check` additionally applies warn-only scheduler-health ceilings:
//! the stackless loop needs no pool threads and context-switches only
//! for CPU-offload handoffs, so pool workers on a trajectory row, a
//! process thread count past the offload cap, or switch rates far above
//! the event-loop baseline all flag a scheduler regression even when
//! the wall clock still passes.
//!
//! Both files also carry one **cluster** row (`scenario = "cluster"`): a
//! fixed multi-tenant [`faaspipe_cluster`] service run whose concurrent
//! per-run process trees exercise the pooled scheduler's many-live-process
//! path that single pipeline runs cannot reach.
//!
//! Both batches run through the [`faaspipe_sweep`] engine. Unlike the
//! repro binaries, `--jobs` here defaults to **1** regardless of core
//! count or `FAASPIPE_JOBS` absence: the per-row CPU / context-switch /
//! peak-RSS gauges read process-wide `/proc` counters, which are only
//! attributable to a row when rows run one at a time. Passing
//! `--jobs N` (or setting `FAASPIPE_JOBS`) opts into concurrent cells:
//! per-row host counters are then recorded as 0 (simulator gauges and
//! wall clock stay per-row), and the process-wide deltas move to the
//! sweep-aggregate row. `BENCH_host.json` always ends with that
//! aggregate row (`scenario = "sweep"`, `workers = 0`): sweep wall
//! clock, cells/s, aggregate simulated events/s, and the job count —
//! the engine's own throughput trend, `--check`ed like any other row.
//!
//! Numbers are host-dependent by construction; CI runs this step
//! non-gating (`--check` against the checked-in baseline, warn-only) and
//! archives the artifact.
//!
//! ```text
//! cargo run --release -p faaspipe-bench --bin bench_sim_wallclock
//! cargo run --release -p faaspipe-bench --bin bench_sim_wallclock -- \
//!     --check [baseline.json]   # exit 1 if wall-clock regressed >1.5x
//! ```

use std::time::Instant;

use faaspipe_bench::{results_dir, write_json};
use faaspipe_cluster::TraceMode;
use faaspipe_cluster::{run_cluster, ArrivalProcess, ClusterConfig, ClusterReport, TenantSpec};
use faaspipe_core::dag::WorkerChoice;
use faaspipe_core::pipeline::{run_methcomp_pipeline, PipelineConfig, PipelineMode};
use faaspipe_des::SimDuration;
use faaspipe_shuffle::ExchangeKind;
use faaspipe_sweep::Sweep;

struct SimRow {
    backend: String,
    workers: usize,
    records: usize,
    wall_ms: f64,
    sim_latency_s: f64,
    spans: usize,
    events: u64,
    peak_live_processes: usize,
    pool_workers: usize,
}

faaspipe_json::json_object! {
    SimRow {
        req backend,
        req workers,
        req records,
        req wall_ms,
        req sim_latency_s,
        req spans,
        req events,
        req peak_live_processes,
        req pool_workers,
    }
}

struct HostRow {
    /// Empty for the single-pipeline trajectory, `"cluster"` for the
    /// multi-tenant service row. `opt` so baselines captured before the
    /// cluster row existed still parse.
    scenario: String,
    workers: usize,
    records: usize,
    wall_ms: f64,
    sim_latency_s: f64,
    events: u64,
    peak_live_processes: usize,
    pool_workers: usize,
    user_cpu_s: f64,
    sys_cpu_s: f64,
    ctx_switches: u64,
    /// Host microseconds of wall clock per dispatched event — the
    /// scheduler's unit cost. Flat across the trajectory means per-event
    /// work is O(what changed); growth with W means a superlinear term
    /// crept back in. `opt` for pre-PR-9 baselines.
    us_per_event: f64,
    /// Peak resident set (`VmHWM`, KiB) attributable to this row: the
    /// kernel high-water mark is reset before each run via
    /// `/proc/self/clear_refs`. 0 when the gauge is unavailable
    /// (off-Linux, or no permission to reset), or when the sweep ran
    /// with `--jobs > 1` (concurrent rows share the process gauge — the
    /// sweep-aggregate row carries it instead). `opt` for pre-PR-9
    /// baselines.
    peak_rss_kib: u64,
    /// Sweep-aggregate fields, non-zero only on the `scenario = "sweep"`
    /// row: cell count, completed cells per wall-clock second, and
    /// aggregate simulated events dispatched per wall-clock second
    /// across the whole BENCH_host batch. `opt` for pre-PR-10 baselines.
    cells: usize,
    cells_per_sec: f64,
    agg_events_per_sec: f64,
    /// Worker threads the sweep ran with (the aggregate row only).
    jobs: usize,
}

faaspipe_json::json_object! {
    HostRow {
        opt scenario,
        req workers,
        req records,
        req wall_ms,
        req sim_latency_s,
        req events,
        req peak_live_processes,
        req pool_workers,
        req user_cpu_s,
        req sys_cpu_s,
        req ctx_switches,
        opt us_per_event,
        opt peak_rss_kib,
        opt cells,
        opt cells_per_sec,
        opt agg_events_per_sec,
        opt jobs,
    }
}

const RECORDS: usize = 8_000;
const HOST_WIDTHS: [usize; 6] = [64, 256, 1024, 4096, 8192, 16384];

/// The fixed cluster workload: `CLUSTER_TENANTS` Table-1-shaped tenants
/// (W = 8 each) fed by a seeded Poisson process, so the same arrival set
/// (and event count) replays on every host.
const CLUSTER_TENANTS: usize = 4;
const CLUSTER_RECORDS: usize = 4_000;

fn cluster_cfg(traced: bool) -> ClusterConfig {
    let tenants = (0..CLUSTER_TENANTS)
        .map(|i| TenantSpec::new(format!("t{}", i)))
        .collect();
    let arrivals = ArrivalProcess::Poisson {
        rate_per_sec: 0.05,
        horizon: SimDuration::from_secs(240),
    };
    let mut cfg = ClusterConfig::new(tenants, arrivals);
    cfg.physical_records = CLUSTER_RECORDS;
    if traced {
        cfg.trace = TraceMode::InMemory;
    }
    cfg
}

fn timed_cluster(traced: bool) -> (f64, ClusterReport) {
    let start = Instant::now();
    let report = run_cluster(&cluster_cfg(traced)).expect("cluster run");
    let wall = start.elapsed();
    assert_eq!(report.failed, 0, "cluster runs must all complete");
    assert!(report.completed > 0, "seeded arrivals must produce runs");
    (wall.as_secs_f64() * 1e3, report)
}

/// Wall-clock regression factor that triggers the `--check` warning.
/// Generous on purpose: shared CI runners jitter, and the check is
/// warn-only — its job is to flag order-of-magnitude scheduler
/// regressions, not 10% noise.
const CHECK_FACTOR: f64 = 1.5;

/// Process-wide (user, system) CPU seconds from `/proc/self/stat`.
fn cpu_times() -> (f64, f64) {
    let stat = std::fs::read_to_string("/proc/self/stat").unwrap_or_default();
    let fields: Vec<&str> = stat.split_whitespace().collect();
    let tick = 100.0; // CLK_TCK
    let ut: f64 = fields.get(13).and_then(|s| s.parse().ok()).unwrap_or(0.0);
    let st: f64 = fields.get(14).and_then(|s| s.parse().ok()).unwrap_or(0.0);
    (ut / tick, st / tick)
}

/// Resets the kernel's peak-RSS high-water mark (`VmHWM`) for this
/// process so the next [`peak_rss_kib`] read is attributable to the work
/// since the reset. Needs write access to `/proc/self/clear_refs`
/// (normally granted to the process itself); quietly a no-op elsewhere —
/// the gauge then reports a whole-process high-water mark instead, which
/// is still an upper bound.
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// Peak resident set size in KiB (`VmHWM`), falling back to the current
/// `VmRSS` and then to 0 when `/proc` is unavailable.
fn peak_rss_kib() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    for key in ["VmHWM:", "VmRSS:"] {
        if let Some(v) = status.lines().find_map(|l| l.strip_prefix(key)) {
            if let Some(kib) = v.split_whitespace().next().and_then(|n| n.parse().ok()) {
                return kib;
            }
        }
    }
    0
}

/// Total context switches (voluntary + involuntary) across all live
/// threads of this process. Under-counts switches charged to already
/// exited threads, which is fine for a before/after delta within one run.
fn ctx_switches() -> u64 {
    let mut total = 0u64;
    if let Ok(tasks) = std::fs::read_dir("/proc/self/task") {
        for t in tasks.flatten() {
            if let Ok(s) = std::fs::read_to_string(t.path().join("status")) {
                for line in s.lines() {
                    if line.starts_with("voluntary_ctxt_switches")
                        || line.starts_with("nonvoluntary_ctxt_switches")
                    {
                        total += line
                            .split_whitespace()
                            .last()
                            .and_then(|v| v.parse::<u64>().ok())
                            .unwrap_or(0);
                    }
                }
            }
        }
    }
    total
}

fn bench_sim(jobs: usize) -> Vec<SimRow> {
    // Each cell times its own run: wall_ms is per-row wherever the cell
    // lands (contention inflates it at --jobs > 1, which the doc header
    // flags; CI measures serially).
    let mut sweep: Sweep<SimRow> = Sweep::new();
    for backend in [ExchangeKind::Scatter, ExchangeKind::Coalesced] {
        for workers in [4usize, 8] {
            sweep.push(format!("sim {} W={}", backend, workers), move || {
                let mut cfg = PipelineConfig::paper_table1();
                cfg.mode = PipelineMode::PureServerless;
                cfg.physical_records = RECORDS;
                cfg.workers = WorkerChoice::Fixed(workers);
                cfg.exchange = backend;
                cfg.trace = true;
                let start = Instant::now();
                let outcome = run_methcomp_pipeline(&cfg).expect("pipeline run");
                let wall = start.elapsed();
                assert!(outcome.verified, "{} W={} must verify", backend, workers);
                SimRow {
                    backend: backend.to_string(),
                    workers,
                    records: RECORDS,
                    wall_ms: wall.as_secs_f64() * 1e3,
                    sim_latency_s: outcome.latency.as_secs_f64(),
                    spans: outcome.trace.spans.len(),
                    events: outcome.sim.events,
                    peak_live_processes: outcome.sim.peak_live_processes,
                    pool_workers: outcome.sim.pool_workers,
                }
            });
        }
    }
    // One traced cluster run: concurrent per-tenant process trees over the
    // shared store/platform, the many-live-process path the pipeline rows
    // above never exercise.
    sweep.push("sim cluster", || {
        let (wall_ms, report) = timed_cluster(true);
        SimRow {
            backend: "cluster".to_string(),
            workers: CLUSTER_TENANTS * 8,
            records: CLUSTER_RECORDS,
            wall_ms,
            sim_latency_s: report.makespan.as_secs_f64(),
            spans: report.trace.spans.len(),
            events: report.sim.events,
            peak_live_processes: report.sim.peak_live_processes,
            pool_workers: report.sim.pool_workers,
        }
    });
    let rows = sweep.run_expect(jobs);

    println!("BENCH_sim — traced pipeline runs (host wall clock):");
    println!(
        "{:<10} {:>4}  {:>9}  {:>12}  {:>7}  {:>9}  {:>5}  {:>5}",
        "backend", "W", "wall", "sim-latency", "spans", "events", "peak", "pool"
    );
    for row in &rows {
        println!(
            "{:<10} {:>4}  {:>7.0}ms  {:>11.2}s  {:>7}  {:>9}  {:>5}  {:>5}",
            row.backend,
            row.workers,
            row.wall_ms,
            row.sim_latency_s,
            row.spans,
            row.events,
            row.peak_live_processes,
            row.pool_workers
        );
    }
    rows
}

/// Process-wide counter snapshot taken around a single cell (only
/// attributable when cells run one at a time).
fn row_counters_before(serial: bool) -> (f64, f64, u64) {
    if !serial {
        return (0.0, 0.0, 0);
    }
    let (u, s) = cpu_times();
    let c = ctx_switches();
    reset_peak_rss();
    (u, s, c)
}

fn bench_host(jobs: usize) -> Vec<HostRow> {
    let serial = jobs == 1;
    let mut sweep: Sweep<HostRow> = Sweep::new();
    for workers in HOST_WIDTHS {
        sweep.push(format!("host W={}", workers), move || {
            let mut cfg = PipelineConfig::paper_table1();
            cfg.mode = PipelineMode::PureServerless;
            cfg.physical_records = RECORDS;
            cfg.workers = WorkerChoice::Fixed(workers);
            cfg.exchange = ExchangeKind::Coalesced;
            cfg.trace = false;
            let (u0, s0, c0) = row_counters_before(serial);
            let start = Instant::now();
            let outcome = run_methcomp_pipeline(&cfg).expect("pipeline run");
            let wall = start.elapsed();
            let rss = if serial { peak_rss_kib() } else { 0 };
            let (u1, s1) = if serial { cpu_times() } else { (0.0, 0.0) };
            let c1 = if serial { ctx_switches() } else { 0 };
            assert!(outcome.verified, "W={} must verify", workers);
            HostRow {
                scenario: String::new(),
                workers,
                records: RECORDS,
                wall_ms: wall.as_secs_f64() * 1e3,
                sim_latency_s: outcome.latency.as_secs_f64(),
                events: outcome.sim.events,
                peak_live_processes: outcome.sim.peak_live_processes,
                pool_workers: outcome.sim.pool_workers,
                user_cpu_s: u1 - u0,
                sys_cpu_s: s1 - s0,
                ctx_switches: c1.saturating_sub(c0),
                us_per_event: wall.as_secs_f64() * 1e6 / outcome.sim.events.max(1) as f64,
                peak_rss_kib: rss,
                cells: 0,
                cells_per_sec: 0.0,
                agg_events_per_sec: 0.0,
                jobs: 0,
            }
        });
    }
    // The untraced cluster row, with the same host counters as the
    // trajectory points so a slowdown still splits into work vs speed.
    sweep.push("host cluster", move || {
        let (u0, s0, c0) = row_counters_before(serial);
        let (wall_ms, report) = timed_cluster(false);
        let rss = if serial { peak_rss_kib() } else { 0 };
        let (u1, s1) = if serial { cpu_times() } else { (0.0, 0.0) };
        let c1 = if serial { ctx_switches() } else { 0 };
        HostRow {
            scenario: "cluster".to_string(),
            workers: CLUSTER_TENANTS * 8,
            records: CLUSTER_RECORDS,
            wall_ms,
            sim_latency_s: report.makespan.as_secs_f64(),
            events: report.sim.events,
            peak_live_processes: report.sim.peak_live_processes,
            pool_workers: report.sim.pool_workers,
            user_cpu_s: u1 - u0,
            sys_cpu_s: s1 - s0,
            ctx_switches: c1.saturating_sub(c0),
            us_per_event: wall_ms * 1e3 / report.sim.events.max(1) as f64,
            peak_rss_kib: rss,
            cells: 0,
            cells_per_sec: 0.0,
            agg_events_per_sec: 0.0,
            jobs: 0,
        }
    });

    // Process-wide deltas around the whole batch feed the aggregate row;
    // they are valid at any job count because they never claim to be
    // per-row.
    let (sweep_u0, sweep_s0) = cpu_times();
    let sweep_c0 = ctx_switches();
    if !serial {
        reset_peak_rss();
    }
    let (mut rows, stats) = sweep.run_expect_stats(jobs);
    let (sweep_u1, sweep_s1) = cpu_times();
    let sweep_c1 = ctx_switches();
    // At --jobs 1 every cell resets the high-water mark, so the batch
    // peak is the max of the per-row gauges; concurrent cells share the
    // gauge and the whole-batch reading is the only attributable one.
    let sweep_rss = if serial {
        rows.iter().map(|r| r.peak_rss_kib).max().unwrap_or(0)
    } else {
        peak_rss_kib()
    };

    println!();
    println!("BENCH_host — untraced coalesced scaling trajectory:");
    println!(
        "{:<5}  {:>10}  {:>12}  {:>9}  {:>5}  {:>5}  {:>7}  {:>7}  {:>9}  {:>8}  {:>9}",
        "W",
        "wall",
        "sim-latency",
        "events",
        "peak",
        "pool",
        "user",
        "sys",
        "ctxsw",
        "µs/evt",
        "peakRSS"
    );
    for row in &rows {
        println!(
            "{:<5}  {:>8.0}ms  {:>11.2}s  {:>9}  {:>5}  {:>5}  {:>6.2}s  {:>6.2}s  {:>9}  {:>8.2}  {:>7}KiB{}",
            row.workers,
            row.wall_ms,
            row.sim_latency_s,
            row.events,
            row.peak_live_processes,
            row.pool_workers,
            row.user_cpu_s,
            row.sys_cpu_s,
            row.ctx_switches,
            row.us_per_event,
            row.peak_rss_kib,
            if row.scenario.is_empty() {
                ""
            } else {
                "  (cluster)"
            }
        );
    }

    let sweep_wall_s = stats.wall.as_secs_f64();
    let agg_events: u64 = rows.iter().map(|r| r.events).sum();
    let sweep_row = HostRow {
        scenario: "sweep".to_string(),
        workers: 0,
        records: RECORDS,
        wall_ms: sweep_wall_s * 1e3,
        sim_latency_s: 0.0,
        events: agg_events,
        peak_live_processes: 0,
        pool_workers: 0,
        user_cpu_s: sweep_u1 - sweep_u0,
        sys_cpu_s: sweep_s1 - sweep_s0,
        ctx_switches: sweep_c1.saturating_sub(sweep_c0),
        us_per_event: sweep_wall_s * 1e6 / agg_events.max(1) as f64,
        peak_rss_kib: sweep_rss,
        cells: stats.cells,
        cells_per_sec: stats.cells_per_sec(),
        agg_events_per_sec: agg_events as f64 / sweep_wall_s.max(f64::EPSILON),
        jobs: stats.jobs,
    };
    println!(
        "sweep: {} cells in {:.0}ms on {} thread(s) — {:.2} cells/s, {:.0} events/s aggregate",
        sweep_row.cells,
        sweep_row.wall_ms,
        sweep_row.jobs,
        sweep_row.cells_per_sec,
        sweep_row.agg_events_per_sec
    );
    rows.push(sweep_row);
    rows
}

/// Context-switch ceiling for `--check`, in switches per 1000 dispatched
/// events. The stackless loop measures ~3–30 (allocator and offload
/// housekeeping plus CI-runner noise); the old thread-per-process
/// scheduler sat near 10_000. 100 splits those regimes with wide margin
/// on both sides.
const CTXSW_PER_KEVENT_CEILING: f64 = 100.0;

/// Process thread-count ceiling for `--check`: the event-loop thread,
/// the CPU-offload pool (capped at min(cores, 8)), and slack for the
/// harness. Warn-only, like the other health ceilings.
const THREADS_CEILING: usize = 16;

/// Current `Threads:` count from /proc/self/status (0 off-Linux).
fn host_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("Threads:"))
                .and_then(|v| v.trim().parse().ok())
        })
        .unwrap_or(0)
}

/// Warn-only scheduler-health ceilings, applied to the fresh rows in
/// `--check` mode. Never contributes to the exit code: these counters
/// are host-shaped and exist to annotate the CI log, not to gate.
fn health_warnings(rows: &[HostRow]) {
    for row in rows {
        if row.pool_workers > 0 {
            eprintln!(
                "warning: {} W={} ran {} pool worker threads — the stackless loop \
                 should keep every process on the event-loop thread",
                if row.scenario.is_empty() {
                    "trajectory"
                } else {
                    &row.scenario
                },
                row.workers,
                row.pool_workers
            );
        }
        // The aggregate row's switches include the sweep engine's own
        // worker handoffs at --jobs > 1; the ceiling only describes the
        // serial event loop.
        let concurrent_aggregate = row.scenario == "sweep" && row.jobs > 1;
        if row.events > 0 && !concurrent_aggregate {
            let per_kevent = row.ctx_switches as f64 / (row.events as f64 / 1e3);
            if per_kevent > CTXSW_PER_KEVENT_CEILING {
                eprintln!(
                    "warning: W={} made {:.0} context switches per 1000 events \
                     (ceiling {:.0}) — processes may be landing on threads again",
                    row.workers, per_kevent, CTXSW_PER_KEVENT_CEILING
                );
            }
        }
    }
    let threads = host_threads();
    if threads > THREADS_CEILING {
        eprintln!(
            "warning: process holds {} threads after the trajectory (ceiling {}) — \
             expected only the event loop plus the capped offload pool",
            threads, THREADS_CEILING
        );
    }
}

/// Compares fresh host rows against a checked-in baseline. Returns the
/// number of regressed points (wall clock above `CHECK_FACTOR` × the
/// baseline for the same scenario and worker count).
fn check_against(baseline: &[HostRow], current: &[HostRow]) -> usize {
    let mut regressed = 0;
    for row in current {
        let Some(base) = baseline.iter().find(|b| {
            b.scenario == row.scenario && b.workers == row.workers && b.records == row.records
        }) else {
            eprintln!(
                "warning: no baseline point for W={} records={}; skipping",
                row.workers, row.records
            );
            continue;
        };
        if row.events != base.events {
            eprintln!(
                "warning: W={} dispatched {} events vs baseline {} — workload drifted, \
                 wall-clock comparison is apples-to-oranges (re-capture the baseline)",
                row.workers, row.events, base.events
            );
        }
        let limit = base.wall_ms * CHECK_FACTOR;
        if row.wall_ms > limit {
            eprintln!(
                "warning: wall-clock regression at W={}: {:.0}ms > {:.1}x baseline {:.0}ms",
                row.workers, row.wall_ms, CHECK_FACTOR, base.wall_ms
            );
            regressed += 1;
        } else {
            println!(
                "check ok at W={}: {:.0}ms <= {:.1}x baseline {:.0}ms",
                row.workers, row.wall_ms, CHECK_FACTOR, base.wall_ms
            );
        }
    }
    regressed
}

/// Jobs for this binary: explicit `--jobs` / `FAASPIPE_JOBS` wins, but
/// the *default* is 1 (not the core count) — serial rows are the only
/// ones whose host counters mean anything.
fn bench_jobs(args: &[String]) -> usize {
    let explicit = args
        .iter()
        .any(|a| a == "--jobs" || a.starts_with("--jobs="))
        || std::env::var_os(faaspipe_sweep::JOBS_ENV).is_some();
    if explicit {
        faaspipe_sweep::jobs_from_args_or_exit(args)
    } else {
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let jobs = bench_jobs(&args);
    // The first positional argument (after stripping the flags and the
    // `--jobs` value) is an optional baseline path for --check.
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => {}
            "--jobs" => {
                let _ = it.next();
            }
            s if s.starts_with("--jobs=") => {}
            _ => positional.push(a),
        }
    }

    // In check mode the baseline must be read before measuring: the
    // fresh rows overwrite `results/BENCH_host.json` afterwards (that
    // file is both the checked-in baseline and the uploaded artifact).
    let baseline: Option<Vec<HostRow>> = if check {
        let path = positional
            .first()
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| results_dir().join("BENCH_host.json"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read baseline {}: {}", path.display(), e));
        Some(faaspipe_json::from_str(&text).expect("parse baseline BENCH_host.json"))
    } else {
        None
    };

    let sim_rows = bench_sim(jobs);
    let host_rows = bench_host(jobs);
    write_json("BENCH_sim", &sim_rows);
    write_json("BENCH_host", &host_rows);

    if let Some(baseline) = baseline {
        health_warnings(&host_rows);
        let regressed = check_against(&baseline, &host_rows);
        if regressed > 0 {
            eprintln!(
                "{} of {} trajectory points regressed (warn-only; CI does not gate on this)",
                regressed,
                host_rows.len()
            );
            std::process::exit(1);
        }
        println!("wall-clock check passed for all {} points", host_rows.len());
    }
}
