//! BENCH_sim — wall-clock cost of the simulator itself.
//!
//! Times (host wall clock, not virtual time) a small fixed batch of
//! pipeline runs shaped like the E15 `--quick` smoke: both object-store
//! exchange layouts at two worker counts, traced, with the default I/O
//! window. Writes `results/BENCH_sim.json` so successive commits can be
//! compared for simulator-performance regressions.
//!
//! Numbers are host-dependent by construction; CI runs this step
//! non-gating and only archives the artifact.
//!
//! ```text
//! cargo run --release -p faaspipe-bench --bin bench_sim_wallclock
//! ```

use std::time::Instant;

use faaspipe_bench::write_json;
use faaspipe_core::dag::WorkerChoice;
use faaspipe_core::pipeline::{run_methcomp_pipeline, PipelineConfig, PipelineMode};
use faaspipe_shuffle::ExchangeKind;

struct Row {
    backend: String,
    workers: usize,
    records: usize,
    wall_ms: f64,
    sim_latency_s: f64,
    spans: usize,
}

faaspipe_json::json_object! {
    Row {
        req backend,
        req workers,
        req records,
        req wall_ms,
        req sim_latency_s,
        req spans,
    }
}

const RECORDS: usize = 8_000;

fn main() {
    let mut rows: Vec<Row> = Vec::new();
    println!("simulator wall-clock (host time per traced pipeline run):");
    println!(
        "{:<10} {:>3}  {:>9}  {:>12}  {:>7}",
        "backend", "W", "wall", "sim-latency", "spans"
    );
    for backend in [ExchangeKind::Scatter, ExchangeKind::Coalesced] {
        for workers in [4usize, 8] {
            let mut cfg = PipelineConfig::paper_table1();
            cfg.mode = PipelineMode::PureServerless;
            cfg.physical_records = RECORDS;
            cfg.workers = WorkerChoice::Fixed(workers);
            cfg.exchange = backend;
            cfg.trace = true;
            let start = Instant::now();
            let outcome = run_methcomp_pipeline(&cfg).expect("pipeline run");
            let wall = start.elapsed();
            assert!(outcome.verified, "{} W={} must verify", backend, workers);
            let row = Row {
                backend: backend.to_string(),
                workers,
                records: RECORDS,
                wall_ms: wall.as_secs_f64() * 1e3,
                sim_latency_s: outcome.latency.as_secs_f64(),
                spans: outcome.trace.spans.len(),
            };
            println!(
                "{:<10} {:>3}  {:>7.0}ms  {:>11.2}s  {:>7}",
                row.backend, row.workers, row.wall_ms, row.sim_latency_s, row.spans
            );
            rows.push(row);
        }
    }
    write_json("BENCH_sim", &rows);
}
