//! E6 — The §2.4 tracker display: workflow progress plus the cost broken
//! down at each stage, for both pipeline configurations.
//!
//! ```text
//! cargo run --release -p faaspipe-bench --bin repro_cost_breakdown
//! ```

use faaspipe_bench::{write_json, REPRO_RECORDS};
use faaspipe_core::pipeline::{run_methcomp_pipeline, PipelineConfig, PipelineMode};

struct Row {
    configuration: String,
    stage: String,
    functions_dollars: f64,
    requests_dollars: f64,
    vm_dollars: f64,
    total_dollars: f64,
}

faaspipe_json::json_object! { Row { req configuration, req stage, req functions_dollars, req requests_dollars, req vm_dollars, req total_dollars } }

fn main() {
    let mut rows = Vec::new();
    for mode in [PipelineMode::PureServerless, PipelineMode::VmHybrid] {
        let mut cfg = PipelineConfig::paper_table1();
        cfg.mode = mode;
        cfg.physical_records = REPRO_RECORDS;
        let outcome = run_methcomp_pipeline(&cfg).expect("pipeline run");
        println!("=== {} ===", mode);
        println!("{}", outcome.tracker_log);
        println!("{}", outcome.cost.render());
        for (stage, c) in &outcome.cost.by_stage {
            rows.push(Row {
                configuration: mode.to_string(),
                stage: stage.clone(),
                functions_dollars: c.functions.as_dollars(),
                requests_dollars: c.requests.as_dollars(),
                vm_dollars: c.vm.as_dollars(),
                total_dollars: c.total().as_dollars(),
            });
        }
    }
    // Shape checks: the pure pipeline's money is in functions; the
    // hybrid's is dominated by the VM.
    let pure_fn: f64 = rows
        .iter()
        .filter(|r| r.configuration.contains("serverless"))
        .map(|r| r.functions_dollars)
        .sum();
    let pure_vm: f64 = rows
        .iter()
        .filter(|r| r.configuration.contains("serverless"))
        .map(|r| r.vm_dollars)
        .sum();
    let hybrid_vm: f64 = rows
        .iter()
        .filter(|r| r.configuration.contains("VM"))
        .map(|r| r.vm_dollars)
        .sum();
    let hybrid_fn: f64 = rows
        .iter()
        .filter(|r| r.configuration.contains("VM"))
        .map(|r| r.functions_dollars)
        .sum();
    assert_eq!(pure_vm, 0.0, "no VM charges in the pure pipeline");
    assert!(pure_fn > 0.0);
    assert!(
        hybrid_vm > hybrid_fn,
        "hybrid cost should be VM-dominated: vm {} fn {}",
        hybrid_vm,
        hybrid_fn
    );
    write_json("cost_breakdown", &rows);
}
