//! E15 — intermediate data-exchange backends: object storage vs VM relay
//! vs direct function-to-function streaming.
//!
//! Runs the purely-serverless pipeline with all four exchange backends
//! (`scatter`, `coalesced`, `vm_relay`, `direct`) across worker counts,
//! reproducing the paper's Table-1 comparison as the two endpoints of a
//! single sweep: the coalesced object-store exchange is the "purely
//! serverless" data plane and the relay VM is the VM-driven one — at a
//! tuned worker count the serverless exchange must win on both latency
//! and cost, exactly the paper's headline ordering.
//!
//! Every run is traced; the per-backend critical-path breakdown and a
//! flame aggregation (time by span name) show *why* the ordering holds:
//! the relay pays provisioning + single-NIC contention, direct streaming
//! skips persistence but gates on rendezvous.
//!
//! ```text
//! cargo run --release -p faaspipe-bench --bin repro_exchange_backends [-- --quick] [--jobs N]
//! ```
//!
//! `--quick` shrinks the sweep to a CI smoke run (small W, few records,
//! no tuned-bracket assertions). The W × backend grid runs through the
//! [`faaspipe_sweep`] engine — independent sims across up to `--jobs`
//! OS threads (default `FAASPIPE_JOBS` / core count), with results and
//! all printed tables byte-identical to `--jobs 1`.

use faaspipe_bench::{write_json, SWEEP_RECORDS};
use faaspipe_core::dag::WorkerChoice;
use faaspipe_core::pipeline::{run_methcomp_pipeline, PipelineConfig, PipelineMode};
use faaspipe_shuffle::ExchangeKind;
use faaspipe_sweep::Sweep;
use faaspipe_trace::{critical_path, flame_rows, TraceData};

struct Row {
    workers: usize,
    backend: String,
    latency_s: f64,
    sort_latency_s: f64,
    cost_dollars: f64,
    compute_s: f64,
    store_io_s: f64,
    cold_start_s: f64,
    queueing_s: f64,
    other_s: f64,
}

faaspipe_json::json_object! {
    Row {
        req workers,
        req backend,
        req latency_s,
        req sort_latency_s,
        req cost_dollars,
        req compute_s,
        req store_io_s,
        req cold_start_s,
        req queueing_s,
        req other_s,
    }
}

const WORKERS: [usize; 5] = [4, 8, 16, 32, 64];

fn run(workers: usize, records: usize, backend: ExchangeKind) -> (Row, TraceData) {
    let mut cfg = PipelineConfig::paper_table1();
    cfg.mode = PipelineMode::PureServerless;
    cfg.physical_records = records;
    cfg.workers = WorkerChoice::Fixed(workers);
    cfg.exchange = backend;
    cfg.trace = true;
    let outcome = run_methcomp_pipeline(&cfg).expect("pipeline run");
    assert!(outcome.verified, "{} W={} must verify", backend, workers);
    let sort = outcome
        .stages
        .iter()
        .find(|s| s.stage == "sort")
        .expect("sort stage");
    let b = critical_path(&outcome.trace).expect("breakdown");
    let row = Row {
        workers,
        backend: backend.to_string(),
        latency_s: outcome.latency.as_secs_f64(),
        sort_latency_s: sort
            .finished
            .saturating_duration_since(sort.started)
            .as_secs_f64(),
        cost_dollars: outcome.cost.total().as_dollars(),
        compute_s: b.compute.as_secs_f64(),
        store_io_s: b.store_io.as_secs_f64(),
        cold_start_s: b.cold_start.as_secs_f64(),
        queueing_s: b.queueing.as_secs_f64(),
        other_s: b.other.as_secs_f64(),
    };
    (row, outcome.trace)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let jobs = faaspipe_sweep::jobs_from_args_or_exit(&args);
    let (worker_sweep, records): (&[usize], usize) = if quick {
        (&[4, 8], 8_000)
    } else {
        (&WORKERS, SWEEP_RECORDS)
    };

    // The whole W × backend grid as independent sweep cells; results come
    // back in submission order, so the tables below print identically at
    // every job count.
    let mut sweep: Sweep<(Row, TraceData)> = Sweep::new();
    for &w in worker_sweep {
        for kind in ExchangeKind::ALL {
            sweep.push(format!("W={} {}", w, kind), move || run(w, records, kind));
        }
    }
    let mut results = sweep.run_expect(jobs).into_iter();

    let mut rows: Vec<Row> = Vec::new();
    let mut best: Vec<(ExchangeKind, Row, TraceData)> = Vec::new();
    println!("latency seconds (cost $) by backend:");
    println!(
        "{:>7}  {:>20}  {:>20}  {:>20}  {:>20}",
        "workers", "scatter", "coalesced", "vm_relay", "direct"
    );
    for &w in worker_sweep {
        let mut cells = Vec::new();
        for kind in ExchangeKind::ALL {
            let (row, trace) = results.next().expect("one result per cell");
            cells.push(format!("{:.2} (${:.4})", row.latency_s, row.cost_dollars));
            match best.iter_mut().find(|(k, _, _)| *k == kind) {
                Some(slot) if slot.1.latency_s <= row.latency_s => {}
                Some(slot) => *slot = (kind, clone_row(&row), trace),
                None => best.push((kind, clone_row(&row), trace)),
            }
            rows.push(row);
        }
        println!(
            "{:>7}  {:>20}  {:>20}  {:>20}  {:>20}",
            w, cells[0], cells[1], cells[2], cells[3]
        );
    }

    println!("\ncritical-path breakdown at each backend's tuned W:");
    println!(
        "{:<10} {:>3}  {:>9} {:>9} {:>9} {:>10} {:>9} {:>8}",
        "backend", "W", "latency", "compute", "store-io", "cold-start", "queueing", "other"
    );
    for (kind, row, _) in &best {
        println!(
            "{:<10} {:>3}  {:>8.2}s {:>8.2}s {:>8.2}s {:>9.2}s {:>8.2}s {:>7.2}s",
            kind.to_string(),
            row.workers,
            row.latency_s,
            row.compute_s,
            row.store_io_s,
            row.cold_start_s,
            row.queueing_s,
            row.other_s
        );
    }

    println!("\ntop flame rows (total simulated time by span) at tuned W:");
    for (kind, row, trace) in &best {
        println!("-- {} (W={}) --", kind, row.workers);
        for r in flame_rows(trace).iter().take(6) {
            println!(
                "   {:<12} {:<24} x{:<4} total {:>9.2}s  self {:>9.2}s",
                r.category.as_str(),
                r.name,
                r.count,
                r.total.as_secs_f64(),
                r.self_time.as_secs_f64()
            );
        }
    }

    // The Table-1 bracket: the tuned serverless (coalesced object store)
    // exchange beats the tuned VM relay on latency AND cost. Quick runs
    // sweep too little of the space for "tuned" to mean anything, so
    // only the provisioning invariant is checked there.
    let tuned = |kind: ExchangeKind| -> &Row {
        &best
            .iter()
            .find(|(k, _, _)| *k == kind)
            .expect("backend swept")
            .1
    };
    let cos = tuned(ExchangeKind::Coalesced);
    let relay = tuned(ExchangeKind::VmRelay);
    println!(
        "\nTable-1 bracket: coalesced COS {:.2}s/${:.4} (W={}) vs VM relay {:.2}s/${:.4} (W={})",
        cos.latency_s,
        cos.cost_dollars,
        cos.workers,
        relay.latency_s,
        relay.cost_dollars,
        relay.workers
    );
    if !quick {
        assert!(
            cos.latency_s < relay.latency_s,
            "tuned object storage must beat the relay VM on latency"
        );
        assert!(
            cos.cost_dollars < relay.cost_dollars,
            "tuned object storage must beat the relay VM on cost"
        );
    }
    // The relay pays its provisioning on the critical path.
    assert!(
        relay.cold_start_s >= 44.0,
        "relay runs must show VM provisioning in the breakdown"
    );

    write_json("exchange_backends", &rows);
}

fn clone_row(r: &Row) -> Row {
    Row {
        workers: r.workers,
        backend: r.backend.clone(),
        latency_s: r.latency_s,
        sort_latency_s: r.sort_latency_s,
        cost_dollars: r.cost_dollars,
        compute_s: r.compute_s,
        store_io_s: r.store_io_s,
        cold_start_s: r.cold_start_s,
        queueing_s: r.queueing_s,
        other_s: r.other_s,
    }
}
