//! E3 — The paper's central claim: "object storage is a reasonable
//! choice for data passing **when the appropriate number of functions is
//! used** in shuffling stages."
//!
//! Sweeps the shuffle worker count, measures pipeline latency and cost at
//! each point, and compares the Primula-style autotuner's pick against
//! the empirical optimum.
//!
//! ```text
//! cargo run --release -p faaspipe-bench --bin repro_worker_sweep [-- --jobs N]
//! ```
//!
//! The 12-point worker sweep plus the autotuned run are 13 independent
//! sims; they run through the [`faaspipe_sweep`] engine (`--jobs` worker
//! threads, default `FAASPIPE_JOBS` / core count) with serial-identical
//! output.

use faaspipe_bench::{write_json, SWEEP_RECORDS};
use faaspipe_core::dag::WorkerChoice;
use faaspipe_core::pipeline::{run_methcomp_pipeline, PipelineConfig, PipelineMode};
use faaspipe_shuffle::{TuningModel, WorkModel};
use faaspipe_sweep::Sweep;
use faaspipe_trace::{critical_path, Breakdown};

struct SweepRow {
    workers: usize,
    latency_s: f64,
    sort_latency_s: f64,
    model_sort_s: f64,
    cost_dollars: f64,
    autotuned: bool,
    compute_s: f64,
    store_io_s: f64,
    cold_start_s: f64,
    queueing_s: f64,
    other_s: f64,
}

faaspipe_json::json_object! { SweepRow { req workers, req latency_s, req sort_latency_s, req model_sort_s, req cost_dollars, req autotuned, req compute_s, req store_io_s, req cold_start_s, req queueing_s, req other_s } }

/// The analytic model instantiated with the sweep's platform parameters
/// (used to validate the autotuner's predictions against measurements).
fn analytic_model() -> TuningModel {
    let cfg = PipelineConfig::paper_table1();
    let work = WorkModel::default();
    TuningModel {
        data_bytes: cfg.modeled_bytes as f64,
        input_chunks: cfg.parallelism,
        request_latency_s: cfg.store.first_byte_latency.as_secs_f64(),
        // Effective per-function bandwidth: the tighter of the store's
        // per-connection cap and the container NIC.
        conn_bw: cfg
            .store
            .per_connection_bw
            .as_bytes_per_sec()
            .min(cfg.faas.nic_bw.as_bytes_per_sec()),
        agg_bw: cfg.store.aggregate_bw.as_bytes_per_sec(),
        ops_per_sec: cfg.store.ops_per_sec,
        startup_s: cfg.faas.cold_start.as_secs_f64(),
        cpu_share: cfg.faas.cpu_share(),
        sort_bps: work.sort_mibps * 1024.0 * 1024.0,
        merge_bps: work.merge_mibps * 1024.0 * 1024.0,
        max_workers: 128,
    }
}

/// Driver-side orchestration on the sort stage's critical path (three
/// phases), which the per-function model does not cover.
const ORCHESTRATION_S: f64 = 3.0 * 8.0;

fn run(workers: WorkerChoice) -> (usize, f64, f64, f64, Breakdown) {
    let mut cfg = PipelineConfig::paper_table1();
    cfg.mode = PipelineMode::PureServerless;
    cfg.physical_records = SWEEP_RECORDS;
    cfg.workers = workers;
    cfg.trace = true;
    let outcome = run_methcomp_pipeline(&cfg).expect("pipeline run");
    let sort = outcome
        .stages
        .iter()
        .find(|s| s.stage == "sort")
        .expect("sort stage");
    let breakdown = critical_path(&outcome.trace).expect("traced run has a breakdown");
    assert_eq!(
        breakdown.total(),
        breakdown.makespan,
        "critical-path buckets must sum to the makespan"
    );
    (
        outcome.sort_workers,
        outcome.latency.as_secs_f64(),
        sort.finished
            .saturating_duration_since(sort.started)
            .as_secs_f64(),
        outcome.cost.total().as_dollars(),
        breakdown,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = faaspipe_sweep::jobs_from_args_or_exit(&args);
    let sweep = [1usize, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128];
    let model = analytic_model();

    // The fixed-W grid plus the autotuned run, all independent sims.
    let mut grid: Sweep<(usize, f64, f64, f64, Breakdown)> = Sweep::new();
    for &w in &sweep {
        grid.push(format!("W={}", w), move || run(WorkerChoice::Fixed(w)));
    }
    grid.push("W=auto", || run(WorkerChoice::Auto));
    let mut results = grid.run_expect(jobs).into_iter();

    let mut rows = Vec::new();
    let mut max_model_err: f64 = 0.0;
    println!(
        "workers  latency(s)  sort(s)  model(s)  err%   cost($)  \
         | measured: compute  store-io  cold  queue  other"
    );
    for &w in &sweep {
        let (_, latency, sort, cost, b) = results.next().expect("one row per W");
        let predicted = model.breakdown(w).total_s() + ORCHESTRATION_S;
        let err = (predicted - sort).abs() / sort * 100.0;
        max_model_err = max_model_err.max(err);
        println!(
            "{:>7}  {:>10.2}  {:>7.2}  {:>8.2}  {:>4.0}%  {:>8.4}  \
             | {:>16.2} {:>9.2} {:>5.2} {:>6.2} {:>6.2}",
            w,
            latency,
            sort,
            predicted,
            err,
            cost,
            b.compute.as_secs_f64(),
            b.store_io.as_secs_f64(),
            b.cold_start.as_secs_f64(),
            b.queueing.as_secs_f64(),
            b.other.as_secs_f64()
        );
        rows.push(SweepRow {
            workers: w,
            latency_s: latency,
            sort_latency_s: sort,
            model_sort_s: predicted,
            cost_dollars: cost,
            autotuned: false,
            compute_s: b.compute.as_secs_f64(),
            store_io_s: b.store_io.as_secs_f64(),
            cold_start_s: b.cold_start.as_secs_f64(),
            queueing_s: b.queueing.as_secs_f64(),
            other_s: b.other.as_secs_f64(),
        });
    }
    println!(
        "analytic model tracks the measured sort stage within {:.0}% across the sweep",
        max_model_err
    );
    let best = rows
        .iter()
        .min_by(|a, b| a.latency_s.total_cmp(&b.latency_s))
        .expect("non-empty sweep");
    println!(
        "empirical optimum: {} workers at {:.2}s",
        best.workers, best.latency_s
    );
    let best_workers = best.workers;
    let best_latency = best.latency_s;
    let worst_latency = rows.iter().map(|r| r.latency_s).fold(f64::MIN, f64::max);

    let (picked, latency, sort, cost, b) = results.next().expect("autotuned row");
    println!(
        "autotuner picked {} workers: {:.2}s (sort {:.2}s, ${:.4})",
        picked, latency, sort, cost
    );
    println!("{}", b.render());
    rows.push(SweepRow {
        workers: picked,
        latency_s: latency,
        sort_latency_s: sort,
        model_sort_s: model.breakdown(picked).total_s() + ORCHESTRATION_S,
        cost_dollars: cost,
        autotuned: true,
        compute_s: b.compute.as_secs_f64(),
        store_io_s: b.store_io.as_secs_f64(),
        cold_start_s: b.cold_start.as_secs_f64(),
        queueing_s: b.queueing.as_secs_f64(),
        other_s: b.other.as_secs_f64(),
    });
    assert!(
        max_model_err < 30.0,
        "the analytic model must stay predictive; worst error {:.0}%",
        max_model_err
    );

    // The claim: a well-chosen worker count makes object storage
    // competitive; bad counts are much worse; the autotuner lands near
    // the optimum.
    assert!(
        worst_latency > best_latency * 1.5,
        "worker count must matter: best {:.1}s worst {:.1}s",
        best_latency,
        worst_latency
    );
    assert!(
        latency <= best_latency * 1.25,
        "autotuner ({} w, {:.1}s) should be within 25% of the oracle ({} w, {:.1}s)",
        picked,
        latency,
        best_workers,
        best_latency
    );
    write_json("worker_sweep", &rows);
}
