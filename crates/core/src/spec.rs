//! Declarative JSON pipeline specifications (paper §2.4).
//!
//! "We augmented Lithops with a module to create pipelines from JSON
//! configuration files." A [`PipelineSpec`] deserializes from JSON and
//! converts into a validated [`Dag`].
//!
//! ```json
//! {
//!   "name": "methcomp",
//!   "bucket": "data",
//!   "stages": [
//!     { "name": "sort", "kind": "shuffle_sort", "workers": "auto",
//!       "input": "in/", "output": "sorted/" },
//!     { "name": "encode", "kind": "encode", "codec": "methcomp",
//!       "workers": 8, "input": "sorted/", "output": "enc/",
//!       "deps": ["sort"] }
//!   ]
//! }
//! ```

use faaspipe_json::{FromJson, Json, JsonError, ToJson};
use faaspipe_vm::VmProfile;

use faaspipe_exchange::ExchangeKind;

use crate::dag::{Dag, DagError, EncodeCodec, StageKind, WorkerChoice};

/// Worker policy as written in JSON: a number or `"auto"` (an untagged
/// value — the JSON type discriminates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkersSpec {
    /// Fixed worker count.
    Fixed(usize),
    /// The string `"auto"`.
    Auto(AutoTag),
}

/// The literal `"auto"`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AutoTag {
    /// Autotuned worker count.
    Auto,
}

impl ToJson for WorkersSpec {
    fn to_json(&self) -> Json {
        match self {
            WorkersSpec::Fixed(n) => Json::UInt(*n as u64),
            WorkersSpec::Auto(_) => Json::Str("auto".to_string()),
        }
    }
}

impl FromJson for WorkersSpec {
    fn from_json(v: &Json) -> Result<WorkersSpec, JsonError> {
        match v {
            Json::Str(s) if s == "auto" => Ok(WorkersSpec::Auto(AutoTag::Auto)),
            Json::UInt(_) | Json::Int(_) => usize::from_json(v).map(WorkersSpec::Fixed),
            other => Err(JsonError::new(format!(
                "expected worker count or \"auto\", found {}",
                other.kind()
            ))),
        }
    }
}

impl From<WorkersSpec> for WorkerChoice {
    fn from(w: WorkersSpec) -> WorkerChoice {
        match w {
            WorkersSpec::Fixed(n) => WorkerChoice::Fixed(n),
            WorkersSpec::Auto(_) => WorkerChoice::Auto,
        }
    }
}

/// One stage in the JSON spec.
#[derive(Debug, Clone)]
pub struct StageSpec {
    /// Unique stage name.
    pub name: String,
    /// `"shuffle_sort"`, `"vm_sort"`, `"encode"`, or `"decode"`.
    pub kind: String,
    /// Worker policy (`shuffle_sort`, `encode`).
    pub workers: Option<WorkersSpec>,
    /// Codec name for `encode`: `"methcomp"` or `"gzipish"`.
    pub codec: Option<String>,
    /// VM profile name for `vm_sort` (e.g. `"bx2-8x32"`).
    pub profile: Option<String>,
    /// Output runs for `vm_sort`.
    pub runs: Option<usize>,
    /// Exchange backend for `shuffle_sort`: `"scatter"` (default),
    /// `"coalesced"` (the Primula I/O optimization), `"vm_relay"`
    /// (Pocket-style in-memory relay VM), or `"direct"`
    /// (function-to-function streaming).
    pub exchange: Option<String>,
    /// Per-function I/O window for `shuffle_sort` (how many store
    /// reads / exchange transfers each function keeps in flight).
    /// Omitted = the executor's default; `1` = strictly sequential.
    pub io_concurrency: Option<usize>,
    /// Input prefix.
    pub input: String,
    /// Output prefix.
    pub output: String,
    /// Names of stages this one depends on.
    pub deps: Vec<String>,
}

faaspipe_json::json_object! {
    StageSpec {
        req name,
        req kind,
        opt workers,
        opt codec,
        opt profile,
        opt runs,
        opt exchange,
        opt io_concurrency,
        req input,
        req output,
        opt deps,
    }
}

/// A whole pipeline spec.
#[derive(Debug, Clone)]
pub struct PipelineSpec {
    /// Workflow name.
    pub name: String,
    /// Bucket all stages use.
    pub bucket: String,
    /// The stages, in an order where dependencies come first.
    pub stages: Vec<StageSpec>,
}

faaspipe_json::json_object! { PipelineSpec { req name, req bucket, req stages } }

/// Errors converting a spec into a DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The JSON did not parse.
    Json {
        /// Parser message.
        message: String,
    },
    /// A stage field combination is invalid.
    Invalid {
        /// The stage.
        stage: String,
        /// Why.
        reason: String,
    },
    /// DAG-level validation failed.
    Dag(DagError),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Json { message } => write!(f, "invalid pipeline JSON: {}", message),
            SpecError::Invalid { stage, reason } => {
                write!(f, "invalid stage '{}': {}", stage, reason)
            }
            SpecError::Dag(e) => write!(f, "invalid workflow: {}", e),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<DagError> for SpecError {
    fn from(e: DagError) -> Self {
        SpecError::Dag(e)
    }
}

impl PipelineSpec {
    /// Parses a spec from JSON text.
    ///
    /// # Errors
    /// [`SpecError::Json`] with the parser's message.
    pub fn from_json(text: &str) -> Result<PipelineSpec, SpecError> {
        faaspipe_json::from_str(text).map_err(|e| SpecError::Json {
            message: e.to_string(),
        })
    }

    /// Serializes the spec back to pretty JSON.
    pub fn to_json(&self) -> String {
        faaspipe_json::to_string_pretty(self)
    }

    /// Converts into a validated [`Dag`].
    ///
    /// # Errors
    /// [`SpecError`] describing the offending stage.
    pub fn to_dag(&self) -> Result<Dag, SpecError> {
        let mut dag = Dag::new(self.name.clone(), self.bucket.clone());
        for s in &self.stages {
            let invalid = |reason: &str| SpecError::Invalid {
                stage: s.name.clone(),
                reason: reason.to_string(),
            };
            let kind = match s.kind.as_str() {
                "shuffle_sort" => {
                    let exchange = match s.exchange.as_deref() {
                        None => ExchangeKind::Scatter,
                        Some(name) => name
                            .parse::<ExchangeKind>()
                            .map_err(|e| invalid(&e.to_string()))?,
                    };
                    StageKind::ShuffleSort {
                        workers: s
                            .workers
                            .map(WorkerChoice::from)
                            .unwrap_or(WorkerChoice::Auto),
                        exchange,
                        io_concurrency: s.io_concurrency,
                        input: s.input.clone(),
                        output: s.output.clone(),
                    }
                }
                "vm_sort" => {
                    let profile = match s.profile.as_deref() {
                        None | Some("bx2-8x32") => VmProfile::bx2_8x32(),
                        Some("bx2-4x16") => VmProfile::bx2_4x16(),
                        Some("bx2-16x64") => VmProfile::bx2_16x64(),
                        Some(other) => {
                            return Err(invalid(&format!("unknown VM profile '{}'", other)))
                        }
                    };
                    StageKind::VmSort {
                        profile,
                        runs: s.runs.ok_or_else(|| invalid("vm_sort requires 'runs'"))?,
                        input: s.input.clone(),
                        output: s.output.clone(),
                    }
                }
                "encode" => {
                    let codec = match s.codec.as_deref() {
                        None | Some("methcomp") => EncodeCodec::Methcomp,
                        Some("gzipish") | Some("gzip") => EncodeCodec::Gzipish,
                        Some(other) => return Err(invalid(&format!("unknown codec '{}'", other))),
                    };
                    let workers = match s.workers {
                        Some(WorkersSpec::Fixed(n)) => n,
                        Some(WorkersSpec::Auto(_)) => {
                            return Err(invalid("encode stages need a fixed worker count"))
                        }
                        None => return Err(invalid("encode requires 'workers'")),
                    };
                    StageKind::Encode {
                        codec,
                        workers,
                        input: s.input.clone(),
                        output: s.output.clone(),
                    }
                }
                "decode" => {
                    let workers = match s.workers {
                        Some(WorkersSpec::Fixed(n)) => n,
                        _ => return Err(invalid("decode requires a fixed 'workers' count")),
                    };
                    StageKind::Decode {
                        workers,
                        input: s.input.clone(),
                        output: s.output.clone(),
                    }
                }
                other => return Err(invalid(&format!("unknown stage kind '{}'", other))),
            };
            let deps: Vec<&str> = s.deps.iter().map(String::as_str).collect();
            dag.add_stage(s.name.clone(), kind, &deps)?;
        }
        dag.validate()?;
        Ok(dag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{
        "name": "methcomp",
        "bucket": "data",
        "stages": [
            { "name": "sort", "kind": "shuffle_sort", "workers": "auto",
              "input": "in/", "output": "sorted/" },
            { "name": "encode", "kind": "encode", "codec": "methcomp",
              "workers": 8, "input": "sorted/", "output": "enc/",
              "deps": ["sort"] }
        ]
    }"#;

    #[test]
    fn parses_and_converts() {
        let spec = PipelineSpec::from_json(GOOD).expect("parse");
        let dag = spec.to_dag().expect("convert");
        assert_eq!(dag.len(), 2);
        assert!(matches!(
            dag.stages()[0].kind,
            StageKind::ShuffleSort {
                workers: WorkerChoice::Auto,
                ..
            }
        ));
        assert!(matches!(
            dag.stages()[1].kind,
            StageKind::Encode {
                codec: EncodeCodec::Methcomp,
                workers: 8,
                ..
            }
        ));
    }

    #[test]
    fn fixed_workers_parse_as_numbers() {
        let json = GOOD.replace("\"auto\"", "12");
        let dag = PipelineSpec::from_json(&json)
            .expect("parse")
            .to_dag()
            .expect("convert");
        assert!(matches!(
            dag.stages()[0].kind,
            StageKind::ShuffleSort {
                workers: WorkerChoice::Fixed(12),
                ..
            }
        ));
    }

    #[test]
    fn io_concurrency_field_parses_and_roundtrips() {
        let json = GOOD.replace(
            "\"kind\": \"shuffle_sort\",",
            "\"kind\": \"shuffle_sort\", \"io_concurrency\": 8,",
        );
        let spec = PipelineSpec::from_json(&json).expect("parse");
        assert_eq!(spec.stages[0].io_concurrency, Some(8));
        let dag = spec.to_dag().expect("dag");
        assert!(matches!(
            dag.stages()[0].kind,
            StageKind::ShuffleSort {
                io_concurrency: Some(8),
                ..
            }
        ));
        // Omitted in the original spec: defers to the executor default.
        let spec = PipelineSpec::from_json(GOOD).expect("parse");
        assert_eq!(spec.stages[0].io_concurrency, None);
        let reparsed = PipelineSpec::from_json(&spec.to_json()).expect("roundtrip");
        assert_eq!(reparsed.stages[0].io_concurrency, None);
    }

    #[test]
    fn vm_sort_spec() {
        let json = r#"{
            "name": "hybrid", "bucket": "data",
            "stages": [
                { "name": "sort", "kind": "vm_sort", "profile": "bx2-8x32",
                  "runs": 8, "input": "in/", "output": "sorted/" }
            ]
        }"#;
        let dag = PipelineSpec::from_json(json)
            .expect("parse")
            .to_dag()
            .expect("convert");
        assert!(matches!(
            &dag.stages()[0].kind,
            StageKind::VmSort { runs: 8, profile, .. } if profile.name == "bx2-8x32"
        ));
    }

    #[test]
    fn bad_json_reports_parser_message() {
        let err = PipelineSpec::from_json("{not json").expect_err("bad json");
        assert!(matches!(err, SpecError::Json { .. }));
    }

    #[test]
    fn unknown_kind_rejected() {
        let json = GOOD.replace("shuffle_sort", "mystery");
        let err = PipelineSpec::from_json(&json)
            .expect("parses")
            .to_dag()
            .expect_err("unknown kind");
        assert!(matches!(err, SpecError::Invalid { .. }));
    }

    #[test]
    fn unknown_codec_rejected() {
        let json = GOOD.replace("methcomp\",", "zpaq\",");
        let err = PipelineSpec::from_json(&json)
            .expect("parses")
            .to_dag()
            .expect_err("unknown codec");
        assert!(matches!(err, SpecError::Invalid { .. }));
    }

    #[test]
    fn missing_dep_flows_through_dag_error() {
        let json = GOOD.replace("[\"sort\"]", "[\"nope\"]");
        let err = PipelineSpec::from_json(&json)
            .expect("parses")
            .to_dag()
            .expect_err("unknown dep");
        assert!(matches!(err, SpecError::Dag(DagError::UnknownDep { .. })));
    }

    #[test]
    fn round_trips_through_json() {
        let spec = PipelineSpec::from_json(GOOD).expect("parse");
        let json = spec.to_json();
        let spec2 = PipelineSpec::from_json(&json).expect("reparse");
        assert_eq!(spec2.stages.len(), spec.stages.len());
        assert_eq!(spec2.name, spec.name);
        spec2.to_dag().expect("still valid");
    }

    #[test]
    fn exchange_field_parses() {
        let json = GOOD.replace(
            "\"kind\": \"shuffle_sort\",",
            "\"kind\": \"shuffle_sort\", \"exchange\": \"coalesced\",",
        );
        let dag = PipelineSpec::from_json(&json)
            .expect("parse")
            .to_dag()
            .expect("dag");
        assert!(matches!(
            dag.stages()[0].kind,
            StageKind::ShuffleSort {
                exchange: ExchangeKind::Coalesced,
                ..
            }
        ));
        for (name, kind) in [
            ("vm_relay", ExchangeKind::VmRelay),
            ("direct", ExchangeKind::Direct),
            (
                "sharded_relay:8:prewarm",
                ExchangeKind::ShardedRelay {
                    shards: 8,
                    prewarm: true,
                },
            ),
            (
                "sharded_relay",
                ExchangeKind::ShardedRelay {
                    shards: 4,
                    prewarm: false,
                },
            ),
        ] {
            let json = GOOD.replace(
                "\"kind\": \"shuffle_sort\",",
                &format!("\"kind\": \"shuffle_sort\", \"exchange\": \"{}\",", name),
            );
            let dag = PipelineSpec::from_json(&json)
                .expect("parse")
                .to_dag()
                .expect("dag");
            assert!(
                matches!(&dag.stages()[0].kind, StageKind::ShuffleSort { exchange, .. } if *exchange == kind)
            );
        }
        let bad = GOOD.replace(
            "\"kind\": \"shuffle_sort\",",
            "\"kind\": \"shuffle_sort\", \"exchange\": \"quantum\",",
        );
        assert!(PipelineSpec::from_json(&bad)
            .expect("parse")
            .to_dag()
            .is_err());
    }

    #[test]
    fn vm_sort_requires_runs() {
        let json = r#"{
            "name": "hybrid", "bucket": "data",
            "stages": [
                { "name": "sort", "kind": "vm_sort",
                  "input": "in/", "output": "sorted/" }
            ]
        }"#;
        let err = PipelineSpec::from_json(json)
            .expect("parses")
            .to_dag()
            .expect_err("runs required");
        assert!(matches!(err, SpecError::Invalid { .. }));
    }
}
