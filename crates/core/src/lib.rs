//! # faaspipe-core — serverless workflow engine and the paper's pipelines
//!
//! The Lithops-like layer of the reproduction: everything the paper's
//! demo shows sits here.
//!
//! * [`dag`] — workflows as DAGs of stages (shuffle-sort, VM-sort,
//!   parallel encode);
//! * [`spec`] — the **declarative JSON pipeline interface** of paper §2.4
//!   ("a module to create pipelines from JSON configuration files");
//! * [`executor`] — runs a DAG over the simulated cloud (functions, VMs,
//!   object store), one driver process per stage with dependency joins;
//! * [`tracker`] — the job tracker: per-stage progress log and cost
//!   breakdown (the demo's IPython tracker, rendered as text);
//! * [`pricing`] — an IBM-Cloud-like price book and cost assembly;
//! * [`pipeline`] — the two METHCOMP pipeline incarnations of Figure 1:
//!   **purely serverless** (A-in-paper-figure: functions + Primula-style
//!   shuffle) and **VM-hybrid** (sort inside a `bx2-8x32`), both returning
//!   latency, verified outputs, and itemized cost — the generators behind
//!   Table 1;
//! * [`report`] — Table-1-style reports and machine-readable emitters.
//!
//! ## Example
//!
//! ```no_run
//! use faaspipe_core::pipeline::{run_methcomp_pipeline, PipelineConfig, PipelineMode};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut cfg = PipelineConfig::paper_table1();
//! cfg.physical_records = 50_000; // keep the demo quick
//! cfg.mode = PipelineMode::PureServerless;
//! let outcome = run_methcomp_pipeline(&cfg)?;
//! println!("latency {:.2}s cost {}", outcome.latency.as_secs_f64(), outcome.cost.total());
//! # Ok(())
//! # }
//! ```

pub mod dag;
pub mod executor;
pub mod pipeline;
pub mod pricing;
pub mod report;
pub mod spec;
pub mod tracker;

pub use dag::{Dag, DagError, EncodeCodec, Stage, StageId, StageKind, WorkerChoice};
pub use executor::{Executor, Services, StageResult};
pub use pipeline::{
    run_methcomp_pipeline, PipelineConfig, PipelineError, PipelineMode, PipelineOutcome,
};
pub use pricing::{CostReport, PriceBook};
pub use tracker::Tracker;
