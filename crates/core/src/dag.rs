//! Workflows as DAGs of stages.
//!
//! "DAG nodes correspond to serverless functions and edges correspond to
//! the flow of data between dependent stages" (paper §1). Here a node is
//! a *stage* (a gang of functions, or a VM task); data flows through
//! object-store prefixes.

use std::fmt;

use faaspipe_exchange::ExchangeKind;
use faaspipe_vm::VmProfile;

/// Index of a stage within its DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StageId(pub(crate) usize);

/// How many functions a shuffle stage should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerChoice {
    /// Exactly this many workers.
    Fixed(usize),
    /// Let the Primula-style autotuner pick ("on the fly").
    Auto,
}

/// Which codec the encode stage runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeCodec {
    /// METHCOMP columnar compression (the pipeline's purpose).
    Methcomp,
    /// The gzip-class baseline (for the compression-ratio comparison).
    Gzipish,
}

/// What a stage does.
#[derive(Debug, Clone)]
pub enum StageKind {
    /// All-to-all sort through object storage with serverless functions
    /// (Figure 1 B's shuffle stage).
    ShuffleSort {
        /// Worker-count policy.
        workers: WorkerChoice,
        /// Intermediate data-exchange backend: an object-store layout
        /// (scatter vs Primula's coalesced), a VM relay, or direct
        /// function-to-function streaming.
        exchange: ExchangeKind,
        /// Per-function I/O window for store reads and exchange
        /// transfers (`None` = the executor's default). `Some(1)`
        /// reproduces the historical strictly-sequential data plane.
        io_concurrency: Option<usize>,
        /// Input prefix of binary record chunks.
        input: String,
        /// Output prefix for sorted runs.
        output: String,
    },
    /// Sort inside a provisioned VM (Figure 1 A's shuffle stage).
    VmSort {
        /// Instance type to provision.
        profile: VmProfile,
        /// Number of sorted runs to emit (downstream parallelism).
        runs: usize,
        /// Input prefix of binary record chunks.
        input: String,
        /// Output prefix for sorted runs.
        output: String,
    },
    /// Embarrassingly parallel encode of sorted runs (Figure 1's second
    /// stage in both incarnations).
    Encode {
        /// Codec to apply.
        codec: EncodeCodec,
        /// Number of encoder functions.
        workers: usize,
        /// Input prefix of sorted runs.
        input: String,
        /// Output prefix for archives.
        output: String,
    },
    /// Embarrassingly parallel decode of METHCOMP archives back into
    /// binary record runs (the consumer side of the pipeline).
    Decode {
        /// Number of decoder functions.
        workers: usize,
        /// Input prefix of archives.
        input: String,
        /// Output prefix for decoded record runs.
        output: String,
    },
}

/// One node of the workflow.
#[derive(Debug, Clone)]
pub struct Stage {
    /// Unique stage name (tags billing and tracking).
    pub name: String,
    /// What the stage does.
    pub kind: StageKind,
    /// Stages that must finish first.
    pub deps: Vec<StageId>,
}

/// Errors constructing a DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// A stage name was used twice.
    DuplicateName {
        /// The repeated name.
        name: String,
    },
    /// A dependency references an unknown stage.
    UnknownDep {
        /// The referencing stage.
        stage: String,
        /// The missing dependency name.
        dep: String,
    },
    /// A stage parameter is invalid (zero workers, empty prefix, ...).
    BadStage {
        /// The offending stage.
        stage: String,
        /// Why it is invalid.
        reason: String,
    },
    /// The DAG has no stages.
    Empty,
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::DuplicateName { name } => write!(f, "duplicate stage name '{}'", name),
            DagError::UnknownDep { stage, dep } => {
                write!(f, "stage '{}' depends on unknown stage '{}'", stage, dep)
            }
            DagError::BadStage { stage, reason } => {
                write!(f, "invalid stage '{}': {}", stage, reason)
            }
            DagError::Empty => write!(f, "workflow has no stages"),
        }
    }
}

impl std::error::Error for DagError {}

/// A validated workflow. Stages are stored in insertion order, which is
/// also a valid topological order (dependencies must already exist when a
/// stage is added — cycles are unrepresentable).
#[derive(Debug, Clone)]
pub struct Dag {
    /// Workflow name.
    pub name: String,
    /// Bucket all stages read and write.
    pub bucket: String,
    stages: Vec<Stage>,
}

impl Dag {
    /// Creates an empty workflow.
    pub fn new(name: impl Into<String>, bucket: impl Into<String>) -> Dag {
        Dag {
            name: name.into(),
            bucket: bucket.into(),
            stages: Vec::new(),
        }
    }

    /// Adds a stage depending on previously added stages (by name).
    ///
    /// # Errors
    /// [`DagError`] on duplicate names, unknown dependencies, or invalid
    /// stage parameters.
    pub fn add_stage(
        &mut self,
        name: impl Into<String>,
        kind: StageKind,
        deps: &[&str],
    ) -> Result<StageId, DagError> {
        let name = name.into();
        if self.stages.iter().any(|s| s.name == name) {
            return Err(DagError::DuplicateName { name });
        }
        validate_kind(&name, &kind)?;
        let mut dep_ids = Vec::with_capacity(deps.len());
        for dep in deps {
            let id = self
                .stages
                .iter()
                .position(|s| s.name == *dep)
                .ok_or_else(|| DagError::UnknownDep {
                    stage: name.clone(),
                    dep: (*dep).to_string(),
                })?;
            dep_ids.push(StageId(id));
        }
        self.stages.push(Stage {
            name,
            kind,
            deps: dep_ids,
        });
        Ok(StageId(self.stages.len() - 1))
    }

    /// The stages in topological (insertion) order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the workflow has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Final validation before execution.
    ///
    /// # Errors
    /// [`DagError::Empty`] for stage-less workflows.
    pub fn validate(&self) -> Result<(), DagError> {
        if self.stages.is_empty() {
            return Err(DagError::Empty);
        }
        Ok(())
    }
}

fn validate_kind(name: &str, kind: &StageKind) -> Result<(), DagError> {
    let bad = |reason: &str| DagError::BadStage {
        stage: name.to_string(),
        reason: reason.to_string(),
    };
    match kind {
        StageKind::ShuffleSort {
            workers,
            io_concurrency,
            input,
            output,
            ..
        } => {
            if matches!(workers, WorkerChoice::Fixed(0)) {
                return Err(bad("zero workers"));
            }
            if *io_concurrency == Some(0) {
                return Err(bad("zero io_concurrency"));
            }
            if input.is_empty() || output.is_empty() {
                return Err(bad("empty prefix"));
            }
            if input == output {
                return Err(bad("input and output prefixes must differ"));
            }
        }
        StageKind::VmSort {
            runs,
            input,
            output,
            ..
        } => {
            if *runs == 0 {
                return Err(bad("zero runs"));
            }
            if input.is_empty() || output.is_empty() {
                return Err(bad("empty prefix"));
            }
            if input == output {
                return Err(bad("input and output prefixes must differ"));
            }
        }
        StageKind::Encode {
            workers,
            input,
            output,
            ..
        }
        | StageKind::Decode {
            workers,
            input,
            output,
        } => {
            if *workers == 0 {
                return Err(bad("zero workers"));
            }
            if input.is_empty() || output.is_empty() {
                return Err(bad("empty prefix"));
            }
            if input == output {
                return Err(bad("input and output prefixes must differ"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sort_kind() -> StageKind {
        StageKind::ShuffleSort {
            workers: WorkerChoice::Fixed(8),
            exchange: ExchangeKind::Scatter,
            io_concurrency: None,
            input: "in/".into(),
            output: "sorted/".into(),
        }
    }

    fn encode_kind() -> StageKind {
        StageKind::Encode {
            codec: EncodeCodec::Methcomp,
            workers: 8,
            input: "sorted/".into(),
            output: "enc/".into(),
        }
    }

    #[test]
    fn linear_pipeline_builds() {
        let mut dag = Dag::new("methcomp", "data");
        dag.add_stage("sort", sort_kind(), &[]).expect("sort");
        dag.add_stage("encode", encode_kind(), &["sort"])
            .expect("encode");
        assert_eq!(dag.len(), 2);
        assert_eq!(dag.stages()[1].deps, vec![StageId(0)]);
        dag.validate().expect("valid");
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut dag = Dag::new("w", "b");
        dag.add_stage("s", sort_kind(), &[]).expect("first");
        let err = dag.add_stage("s", encode_kind(), &[]).expect_err("dup");
        assert!(matches!(err, DagError::DuplicateName { .. }));
    }

    #[test]
    fn unknown_dep_rejected() {
        let mut dag = Dag::new("w", "b");
        let err = dag
            .add_stage("encode", encode_kind(), &["sort"])
            .expect_err("missing dep");
        assert!(matches!(err, DagError::UnknownDep { .. }));
    }

    #[test]
    fn forward_deps_are_unrepresentable() {
        // Cycles cannot be constructed: deps must name already-added
        // stages, so insertion order is always topological.
        let mut dag = Dag::new("w", "b");
        dag.add_stage("a", sort_kind(), &[]).expect("a");
        let id = dag.add_stage("b", encode_kind(), &["a"]).expect("b");
        assert_eq!(id, StageId(1));
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut dag = Dag::new("w", "b");
        let err = dag
            .add_stage(
                "s",
                StageKind::ShuffleSort {
                    workers: WorkerChoice::Fixed(0),
                    exchange: ExchangeKind::Scatter,
                    io_concurrency: None,
                    input: "in/".into(),
                    output: "out/".into(),
                },
                &[],
            )
            .expect_err("zero workers");
        assert!(matches!(err, DagError::BadStage { .. }));
        let err = dag
            .add_stage(
                "s",
                StageKind::Encode {
                    codec: EncodeCodec::Methcomp,
                    workers: 4,
                    input: "x/".into(),
                    output: "x/".into(),
                },
                &[],
            )
            .expect_err("same prefix");
        assert!(matches!(err, DagError::BadStage { .. }));
    }

    #[test]
    fn empty_dag_fails_validation() {
        let dag = Dag::new("w", "b");
        assert_eq!(dag.validate(), Err(DagError::Empty));
        assert!(dag.is_empty());
    }
}
