//! The paper's two METHCOMP pipeline incarnations (Figure 1) and the
//! Table-1 measurement harness.
//!
//! * **Purely serverless** (paper Figure 1 "B"): Primula-style shuffle
//!   sort between cloud functions through object storage, then parallel
//!   METHCOMP encoding in functions.
//! * **VM-hybrid** (paper Figure 1 "A"): the sort runs inside a
//!   provisioned `bx2-8x32` VM; only the encode stage uses functions.
//!
//! Both run against a synthetic stand-in for the 3.5 GB ENCODE sample: a
//! physically smaller dataset whose wire sizes and compute charges are
//! scaled up to the modelled size (see `StoreConfig::size_scale` and
//! DESIGN.md §2). The data plane is real — outputs are verified to be the
//! sorted input and to decompress losslessly.

use std::fmt;

use bytes::Bytes;

use faaspipe_des::{Money, Sim, SimDuration, SimError, SimReport, SimTime};
use faaspipe_exchange::ExchangeKind;
use faaspipe_faas::{FaasConfig, FunctionPlatform};
use faaspipe_methcomp::codec as mc_codec;
use faaspipe_methcomp::synth::Synthesizer;
use faaspipe_methcomp::MethRecord;
use faaspipe_shuffle::{SortConfig, SortRecord, WorkModel};
use faaspipe_store::{ObjectStore, StoreConfig};
use faaspipe_trace::{Category, SpanId, TraceData, TraceSink};
use faaspipe_vm::{VmFleet, VmProfile};

use crate::dag::{Dag, EncodeCodec, StageKind, WorkerChoice};
use crate::executor::{Executor, Services, StageResult};
use crate::pricing::{CostReport, PriceBook};
use crate::tracker::Tracker;

/// Which incarnation of the pipeline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineMode {
    /// Object-storage data exchange end to end (functions only).
    PureServerless,
    /// Sort inside a VM; functions for encoding.
    VmHybrid,
}

impl fmt::Display for PipelineMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineMode::PureServerless => write!(f, "\"Purely\" serverless"),
            PipelineMode::VmHybrid => write!(f, "VM-supported"),
        }
    }
}

/// Configuration of one pipeline measurement.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Which incarnation to run.
    pub mode: PipelineMode,
    /// Modelled dataset size in bytes (the paper's 3.5 GB input).
    pub modeled_bytes: u64,
    /// Physical records actually generated and moved (wire sizes and
    /// compute are scaled from these to `modeled_bytes`).
    pub physical_records: usize,
    /// Parallelism degree (paper: 8 workers).
    pub parallelism: usize,
    /// Worker policy for the serverless shuffle stage.
    pub workers: WorkerChoice,
    /// VM type for the hybrid sort.
    pub vm_profile: VmProfile,
    /// Synthetic dataset seed.
    pub seed: u64,
    /// Object-store model (size scale is set automatically).
    pub store: StoreConfig,
    /// Functions-platform model.
    pub faas: FaasConfig,
    /// CPU-work calibration (size scale is set automatically).
    pub work: WorkModel,
    /// Price book for the cost report.
    pub pricing: PriceBook,
    /// Verify outputs against the input (decode every archive).
    pub verify: bool,
    /// Intermediate data-exchange backend for the serverless shuffle
    /// (object-store scatter/coalesced, VM relay, sharded relay fleet —
    /// optionally pre-warmed — or direct streaming).
    pub exchange: ExchangeKind,
    /// Per-function I/O window for the serverless shuffle: how many
    /// store reads / exchange transfers each function keeps in flight.
    /// `1` reproduces the historical strictly-sequential data plane.
    pub io_concurrency: usize,
    /// Codec for the encode stage (METHCOMP, or the gzip-class baseline
    /// for the end-to-end codec comparison).
    pub encode_codec: EncodeCodec,
    /// Calibrated model parameters for `exchange = auto` planning.
    /// `None` plans from config-derived defaults.
    pub plan_params: Option<faaspipe_plan::ModelParams>,
    /// Record a full execution trace (spans + counters) into
    /// [`PipelineOutcome::trace`]. Off by default: the disabled sink
    /// keeps instrumentation out of the hot path.
    pub trace: bool,
}

impl PipelineConfig {
    /// The paper's Table-1 setup: 3.5 GB modelled input, parallelism 8,
    /// 2 GB functions, `bx2-8x32` VM.
    pub fn paper_table1() -> PipelineConfig {
        PipelineConfig {
            mode: PipelineMode::PureServerless,
            modeled_bytes: 3_500_000_000,
            physical_records: 150_000,
            parallelism: 8,
            workers: WorkerChoice::Fixed(8),
            vm_profile: VmProfile::bx2_8x32(),
            seed: 0xE0C0_FF88,
            store: StoreConfig::default(),
            faas: FaasConfig::default(),
            work: WorkModel::default(),
            pricing: PriceBook::default(),
            verify: true,
            exchange: ExchangeKind::Scatter,
            io_concurrency: SortConfig::default().io_concurrency,
            encode_codec: EncodeCodec::Methcomp,
            plan_params: None,
            trace: false,
        }
    }

    /// The scale factor mapping physical wire bytes to modelled bytes.
    pub fn size_scale(&self) -> f64 {
        let physical = (self.physical_records * MethRecord::WIRE_SIZE) as f64;
        self.modeled_bytes as f64 / physical
    }
}

/// Errors from a pipeline run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The simulation itself failed (deadlock or unobserved panic).
    Sim(SimError),
    /// A stage failed.
    Stage {
        /// Failure message from the stage driver.
        message: String,
    },
    /// Output verification failed.
    Verification {
        /// What did not match.
        message: String,
    },
    /// The configuration is unusable.
    BadConfig {
        /// Why.
        reason: String,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Sim(e) => write!(f, "simulation failed: {}", e),
            PipelineError::Stage { message } => write!(f, "stage failed: {}", message),
            PipelineError::Verification { message } => {
                write!(f, "verification failed: {}", message)
            }
            PipelineError::BadConfig { reason } => write!(f, "bad config: {}", reason),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<SimError> for PipelineError {
    fn from(e: SimError) -> Self {
        PipelineError::Sim(e)
    }
}

/// Everything a pipeline run produces.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// The mode that ran.
    pub mode: PipelineMode,
    /// End-to-end latency including startup times (the Table-1 metric).
    pub latency: SimDuration,
    /// Itemized cost (the Table-1 metric).
    pub cost: CostReport,
    /// Per-stage results in execution order.
    pub stages: Vec<StageResult>,
    /// Workers used by the shuffle stage.
    pub sort_workers: usize,
    /// Modelled input bytes.
    pub modeled_input_bytes: u64,
    /// Modelled archive bytes written by the encode stage.
    pub modeled_output_bytes: u64,
    /// Compression ratio measured on the *physical* data
    /// (bedMethyl text bytes / archive bytes).
    pub compression_ratio_text: f64,
    /// Whether outputs were verified (sorted order + lossless decode).
    pub verified: bool,
    /// Rendered tracker log.
    pub tracker_log: String,
    /// Full execution trace (empty unless [`PipelineConfig::trace`]).
    pub trace: TraceData,
    /// The simulator's own execution report: events dispatched, peak
    /// live processes, pool threads — the gauges the wall-clock
    /// regression harness records alongside host timings.
    pub sim: SimReport,
}

/// Runs one METHCOMP pipeline measurement end to end.
///
/// # Errors
/// [`PipelineError`] on invalid configuration, stage failures,
/// simulation errors, or (with `verify`) output mismatches.
pub fn run_methcomp_pipeline(cfg: &PipelineConfig) -> Result<PipelineOutcome, PipelineError> {
    if cfg.parallelism == 0 || cfg.physical_records == 0 {
        return Err(PipelineError::BadConfig {
            reason: "parallelism and physical_records must be positive".to_string(),
        });
    }
    let scale = cfg.size_scale();
    let mut sim = Sim::new();
    let store = ObjectStore::install(&mut sim, cfg.store.clone().with_size_scale(scale));
    let faas = FunctionPlatform::install(&mut sim, cfg.faas.clone());
    let fleet = VmFleet::new();
    store
        .create_bucket("data")
        .map_err(|e| PipelineError::BadConfig {
            reason: e.to_string(),
        })?;

    // Stage the input dataset (already "in COS" when the pipeline starts).
    let dataset = Synthesizer::new(cfg.seed).generate_shuffled(cfg.physical_records);
    let per = dataset.records.len().div_ceil(cfg.parallelism);
    for (i, chunk) in dataset.records.chunks(per).enumerate() {
        let data = SortRecord::write_all(chunk);
        store
            .put_untimed("data", &format!("in/{:04}", i), Bytes::from(data))
            .map_err(|e| PipelineError::BadConfig {
                reason: e.to_string(),
            })?;
    }

    // Build the two-stage DAG of Figure 1. When tracing, every service
    // records into one shared sink under a root Run span; otherwise the
    // services keep their default disabled sinks and only the tracker's
    // private sink (for the rendered log) is live.
    let sink = if cfg.trace {
        TraceSink::recording()
    } else {
        TraceSink::disabled()
    };
    let run = if cfg.trace {
        let run = sink.span_start(
            Category::Run,
            "methcomp",
            "driver",
            "driver",
            SpanId::NONE,
            SimTime::ZERO,
        );
        sink.attr(run, "mode", cfg.mode.to_string());
        sink.attr(run, "seed", cfg.seed);
        store.set_trace_sink(sink.clone());
        faas.set_trace_sink(sink.clone());
        fleet.set_trace_sink(sink.clone());
        run
    } else {
        SpanId::NONE
    };
    let tracker = if cfg.trace {
        Tracker::with_sink(sink.clone(), run)
    } else {
        Tracker::new()
    };
    let services = Services {
        store: store.clone(),
        faas: faas.clone(),
        fleet: fleet.clone(),
    };
    let work = cfg.work.clone().with_size_scale(scale);
    let mut executor = Executor::new(services, work, tracker.clone());
    if let Some(params) = &cfg.plan_params {
        executor = executor.with_plan_params(params.clone());
    }
    let mut dag = Dag::new("methcomp", "data");
    let sort_kind = match cfg.mode {
        PipelineMode::PureServerless => StageKind::ShuffleSort {
            workers: cfg.workers,
            exchange: cfg.exchange,
            // Under `auto` the planner owns the I/O window; an explicit
            // backend keeps the configured one.
            io_concurrency: if cfg.exchange == ExchangeKind::Auto {
                None
            } else {
                Some(cfg.io_concurrency.max(1))
            },
            input: "in/".into(),
            output: "sorted/".into(),
        },
        PipelineMode::VmHybrid => StageKind::VmSort {
            profile: cfg.vm_profile.clone(),
            runs: cfg.parallelism,
            input: "in/".into(),
            output: "sorted/".into(),
        },
    };
    dag.add_stage("sort", sort_kind, &[])
        .map_err(|e| PipelineError::BadConfig {
            reason: e.to_string(),
        })?;
    dag.add_stage(
        "encode",
        StageKind::Encode {
            codec: cfg.encode_codec,
            workers: cfg.parallelism,
            input: "sorted/".into(),
            output: "enc/".into(),
        },
        &["sort"],
    )
    .map_err(|e| PipelineError::BadConfig {
        reason: e.to_string(),
    })?;

    let handle = executor.spawn_dag(&mut sim, &dag);
    let report = sim.run()?;
    sink.span_end(run, report.end_time);
    let mut stages = handle
        .ok_results()
        .map_err(|message| PipelineError::Stage { message })?;
    stages.sort_by_key(|s| s.started);

    // Latency: first stage start to last stage end (includes startups).
    let started = stages
        .iter()
        .map(|s| s.started)
        .min()
        .expect("stages exist");
    let finished = stages
        .iter()
        .map(|s| s.finished)
        .max()
        .expect("stages exist");
    let latency = finished.saturating_duration_since(started);

    let cost = cfg.pricing.assemble(
        &faas.records(),
        &store.metrics(),
        &fleet.records(),
        report.end_time,
    );
    let sort_workers = stages
        .iter()
        .find(|s| s.stage == "sort")
        .map_or(0, |s| s.workers_used);
    let physical_out: u64 = stages
        .iter()
        .find(|s| s.stage == "encode")
        .map_or(0, |s| s.output_bytes);

    // Verification + compression accounting on the physical data.
    let mut verified = false;
    let mut text_bytes = 0usize;
    let mut archive_bytes = 0usize;
    if cfg.verify {
        let mut expect = dataset.clone();
        expect.sort();
        let mut all: Vec<MethRecord> = Vec::with_capacity(dataset.len());
        let run_keys = store.keys_untimed("data", "sorted/");
        if run_keys.is_empty() {
            return Err(PipelineError::Verification {
                message: "no sorted runs produced".to_string(),
            });
        }
        for key in &run_keys {
            let j = key.trim_start_matches("sorted/").to_string();
            let run = store
                .peek("data", key)
                .ok_or_else(|| PipelineError::Verification {
                    message: format!("missing sorted run {}", j),
                })?;
            let records: Vec<MethRecord> =
                SortRecord::read_all(&run).map_err(|e| PipelineError::Verification {
                    message: format!("sorted run {} corrupt: {}", j, e),
                })?;
            let archive = store.peek("data", &format!("enc/{}", j)).ok_or_else(|| {
                PipelineError::Verification {
                    message: format!("missing archive {}", j),
                }
            })?;
            archive_bytes += archive.len();
            match cfg.encode_codec {
                EncodeCodec::Methcomp => {
                    let decoded = mc_codec::decompress(&archive).map_err(|e| {
                        PipelineError::Verification {
                            message: format!("archive {} corrupt: {}", j, e),
                        }
                    })?;
                    if decoded.records != records {
                        return Err(PipelineError::Verification {
                            message: format!("archive {} does not round-trip", j),
                        });
                    }
                    text_bytes += decoded.to_text().len();
                }
                EncodeCodec::Gzipish => {
                    let text = faaspipe_codec::gzipish::decompress(&archive).map_err(|e| {
                        PipelineError::Verification {
                            message: format!("archive {} corrupt: {}", j, e),
                        }
                    })?;
                    let expect_text = faaspipe_methcomp::Dataset::new(records.clone()).to_text();
                    if text != expect_text.as_bytes() {
                        return Err(PipelineError::Verification {
                            message: format!("archive {} does not round-trip", j),
                        });
                    }
                    text_bytes += text.len();
                }
            }
            all.extend(records);
        }
        if all != expect.records {
            return Err(PipelineError::Verification {
                message: "concatenated runs are not the sorted input".to_string(),
            });
        }
        verified = true;
    }

    Ok(PipelineOutcome {
        mode: cfg.mode,
        latency,
        cost,
        stages,
        sort_workers,
        modeled_input_bytes: cfg.modeled_bytes,
        modeled_output_bytes: (physical_out as f64 * scale) as u64,
        compression_ratio_text: if archive_bytes > 0 {
            text_bytes as f64 / archive_bytes as f64
        } else {
            0.0
        },
        verified,
        tracker_log: tracker.render(),
        trace: sink.snapshot(),
        sim: report,
    })
}

impl PipelineOutcome {
    /// The Table-1 row for this run: `(configuration, latency s, cost $)`.
    pub fn table1_row(&self) -> (String, f64, Money) {
        (
            self.mode.to_string(),
            self.latency.as_secs_f64(),
            self.cost.total(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(mode: PipelineMode) -> PipelineConfig {
        let mut cfg = PipelineConfig::paper_table1();
        cfg.mode = mode;
        cfg.physical_records = 20_000;
        cfg
    }

    #[test]
    fn pure_serverless_pipeline_runs_and_verifies() {
        let outcome =
            run_methcomp_pipeline(&quick(PipelineMode::PureServerless)).expect("pipeline ok");
        assert!(outcome.verified);
        assert_eq!(outcome.stages.len(), 2);
        assert_eq!(outcome.sort_workers, 8);
        assert!(outcome.latency > SimDuration::from_secs(10));
        assert!(outcome.cost.total() > Money::ZERO);
        assert!(outcome.cost.vm == Money::ZERO, "no VM in pure mode");
        assert!(outcome.compression_ratio_text > 10.0);
        assert!(outcome.tracker_log.contains("sort"));
    }

    #[test]
    fn vm_hybrid_pipeline_runs_and_verifies() {
        let outcome = run_methcomp_pipeline(&quick(PipelineMode::VmHybrid)).expect("pipeline ok");
        assert!(outcome.verified);
        assert!(outcome.cost.vm > Money::ZERO, "VM must be billed");
        // Provisioning alone is ~52 s.
        assert!(outcome.latency > SimDuration::from_secs(52));
    }

    #[test]
    fn serverless_beats_vm_on_latency_table1_shape() {
        let pure = run_methcomp_pipeline(&quick(PipelineMode::PureServerless)).expect("pure ok");
        let hybrid = run_methcomp_pipeline(&quick(PipelineMode::VmHybrid)).expect("hybrid ok");
        assert!(
            pure.latency < hybrid.latency,
            "paper's headline: {} vs {}",
            pure.latency,
            hybrid.latency
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_methcomp_pipeline(&quick(PipelineMode::PureServerless)).expect("a");
        let b = run_methcomp_pipeline(&quick(PipelineMode::PureServerless)).expect("b");
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.cost.total(), b.cost.total());
        assert_eq!(a.modeled_output_bytes, b.modeled_output_bytes);
    }

    #[test]
    fn traced_run_records_spans_and_critical_path_tiles_makespan() {
        let mut cfg = quick(PipelineMode::VmHybrid);
        cfg.trace = true;
        let outcome = run_methcomp_pipeline(&cfg).expect("pipeline ok");
        let data = &outcome.trace;
        let run = data.run_span().expect("run span");
        assert!(run.end.is_some(), "run span must be closed");
        for cat in [
            Category::Stage,
            Category::VmTask,
            Category::Invocation,
            Category::StoreRequest,
            Category::Compute,
            Category::ColdStart,
            Category::Orchestration,
        ] {
            assert!(
                data.spans.iter().any(|s| s.category == cat),
                "missing {:?} spans",
                cat
            );
        }
        let b = faaspipe_trace::critical_path(data).expect("breakdown");
        assert_eq!(b.total(), b.makespan, "buckets must tile the makespan");
        assert_eq!(
            b.makespan,
            run.duration().expect("run duration"),
            "attribution window is the run span"
        );
        assert!(
            b.cold_start >= SimDuration::from_secs(44),
            "VM provisioning"
        );

        // Untraced runs stay empty (and cheap).
        let untraced = run_methcomp_pipeline(&quick(PipelineMode::VmHybrid)).expect("pipeline ok");
        assert!(untraced.trace.spans.is_empty());
        assert!(untraced.trace.counters.is_empty());
    }

    #[test]
    fn bad_config_rejected() {
        let mut cfg = quick(PipelineMode::PureServerless);
        cfg.parallelism = 0;
        assert!(matches!(
            run_methcomp_pipeline(&cfg),
            Err(PipelineError::BadConfig { .. })
        ));
    }

    #[test]
    fn table1_row_shape() {
        let outcome =
            run_methcomp_pipeline(&quick(PipelineMode::PureServerless)).expect("pipeline ok");
        let (config, latency, cost) = outcome.table1_row();
        assert!(config.contains("serverless"));
        assert!(latency > 0.0);
        assert!(cost > Money::ZERO);
    }
}
