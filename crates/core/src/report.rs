//! Experiment reports: Table-1 rendering and machine-readable emitters.

use faaspipe_des::Money;
use faaspipe_json::ToJson;

use crate::pipeline::PipelineOutcome;

/// One row of a Table-1-style report.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Configuration name.
    pub configuration: String,
    /// End-to-end latency in seconds.
    pub latency_s: f64,
    /// Total cost in dollars.
    pub cost_dollars: f64,
    /// Whether outputs were verified.
    pub verified: bool,
}

faaspipe_json::json_object! {
    Table1Row { req configuration, req latency_s, req cost_dollars, req verified }
}

impl Table1Row {
    /// Builds a row from a pipeline outcome.
    pub fn from_outcome(outcome: &PipelineOutcome) -> Table1Row {
        let (configuration, latency_s, cost) = outcome.table1_row();
        Table1Row {
            configuration,
            latency_s,
            cost_dollars: cost.as_dollars(),
            verified: outcome.verified,
        }
    }
}

/// Renders rows as the paper's Table 1 (markdown-ish).
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str("| Configuration        | Latency (s) | Cost ($) |\n");
    out.push_str("|----------------------|-------------|----------|\n");
    for r in rows {
        out.push_str(&format!(
            "| {:<20} | {:>11.2} | {:>8.4} |\n",
            r.configuration, r.latency_s, r.cost_dollars
        ));
    }
    out
}

/// Renders any serializable result set as a JSON document (for the
/// bench harness to archive).
pub fn to_json<T: ToJson + ?Sized>(value: &T) -> String {
    faaspipe_json::to_string_pretty(value)
}

/// Renders `(x, y)` series as CSV with a header.
pub fn render_csv(header: &str, rows: &[Vec<String>]) -> String {
    let mut out = String::with_capacity(rows.len() * 32 + header.len() + 1);
    out.push_str(header);
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Formats a money value for tables.
pub fn dollars(m: Money) -> String {
    format!("{:.4}", m.as_dollars())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_renders_both_rows() {
        let rows = vec![
            Table1Row {
                configuration: "\"Purely\" serverless".into(),
                latency_s: 83.32,
                cost_dollars: 0.008,
                verified: true,
            },
            Table1Row {
                configuration: "VM-supported".into(),
                latency_s: 142.77,
                cost_dollars: 0.010,
                verified: true,
            },
        ];
        let table = render_table1(&rows);
        assert!(table.contains("83.32"));
        assert!(table.contains("142.77"));
        assert!(table.contains("0.0080"));
        assert!(table.lines().count() == 4);
    }

    #[test]
    fn csv_renders_rows() {
        let csv = render_csv(
            "workers,latency_s",
            &[
                vec!["1".into(), "120.5".into()],
                vec!["8".into(), "41.2".into()],
            ],
        );
        assert_eq!(csv, "workers,latency_s\n1,120.5\n8,41.2\n");
    }

    #[test]
    fn json_emits() {
        let rows = vec![Table1Row {
            configuration: "x".into(),
            latency_s: 1.0,
            cost_dollars: 0.5,
            verified: false,
        }];
        let json = to_json(&rows);
        assert!(json.contains("\"latency_s\": 1.0"));
    }

    #[test]
    fn dollars_formats() {
        assert_eq!(dollars(Money::from_dollars(0.0123456)), "0.0123");
    }
}
