//! Executes a workflow DAG over the simulated cloud.
//!
//! One driver process per stage: each joins its dependencies' drivers,
//! runs the stage (a gang of function invocations, or a VM task), and
//! publishes a [`StageResult`]. Independent stages overlap naturally.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use faaspipe_des::{Ctx, LocalBoxFuture, ProcessId, Sim, SimDuration, SimTime};
use faaspipe_exchange::{
    DataExchange, DirectConfig, DirectExchange, ExchangeKind, RelayConfig, ShardedRelayConfig,
    ShardedRelayExchange, VmRelayExchange,
};
use faaspipe_faas::FunctionPlatform;
use faaspipe_methcomp::{codec as mc_codec, Dataset, MethRecord};
use faaspipe_plan::{ModelParams, Plan, Planner, SearchSpace, Workload};
use faaspipe_shuffle::{
    serverless_sort_async, vm_sort_async, Autotuner, SortConfig, SortRecord, VmSortConfig,
    WorkModel,
};
use faaspipe_store::ObjectStore;
use faaspipe_trace::Category;
use faaspipe_vm::VmFleet;

use crate::dag::{Dag, EncodeCodec, Stage, StageKind, WorkerChoice};
use crate::tracker::Tracker;

/// The simulated cloud services a workflow runs on.
#[derive(Clone)]
pub struct Services {
    /// Object storage.
    pub store: Arc<ObjectStore>,
    /// Functions platform.
    pub faas: Arc<FunctionPlatform>,
    /// VM fleet.
    pub fleet: VmFleet,
}

impl std::fmt::Debug for Services {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Services").finish_non_exhaustive()
    }
}

/// Outcome of one stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageResult {
    /// Stage name.
    pub stage: String,
    /// When the stage driver began (after dependencies).
    pub started: SimTime,
    /// When the stage finished.
    pub finished: SimTime,
    /// Workers actually used (autotuned shuffles may differ from the
    /// request).
    pub workers_used: usize,
    /// Real output bytes written.
    pub output_bytes: u64,
}

type ResultMap = Arc<Mutex<BTreeMap<String, Result<StageResult, String>>>>;

/// A stage-driver process body: an async closure over the driver's
/// [`Ctx`], boxed so both spawn entry points (from outside the sim and
/// from a live process) can hand it to the scheduler as a stackless task.
type StageBody = Box<dyn for<'a> FnOnce(&'a mut Ctx) -> LocalBoxFuture<'a, ()> + Send>;

/// Where DAG driver processes are spawned from: the sim itself (before
/// `run`) or a live process (a cluster's per-run driver). Either way the
/// drivers are stackless tasks — they cost no OS thread while suspended.
enum DagSpawner<'s> {
    Sim(&'s mut Sim),
    Live(&'s Ctx),
}

impl DagSpawner<'_> {
    async fn spawn(&mut self, name: String, body: StageBody) -> ProcessId {
        match self {
            DagSpawner::Sim(sim) => {
                sim.spawn_task(
                    name,
                    move |mut ctx: Ctx| async move { body(&mut ctx).await },
                )
            }
            DagSpawner::Live(ctx) => {
                ctx.spawn_task(
                    name,
                    move |mut ctx: Ctx| async move { body(&mut ctx).await },
                )
                .await
            }
        }
    }
}

/// Handle to a spawned workflow: join `root` (or run the sim to
/// completion) and collect results.
#[derive(Debug)]
pub struct DagHandle {
    /// The workflow root process (finishes when every stage does).
    pub root: ProcessId,
    results: ResultMap,
}

impl DagHandle {
    /// Per-stage results; `Err` holds the failure message.
    pub fn results(&self) -> BTreeMap<String, Result<StageResult, String>> {
        self.results.lock().clone()
    }

    /// Convenience: all stage results, or the first failure.
    ///
    /// # Errors
    /// The first stage error message.
    pub fn ok_results(&self) -> Result<Vec<StageResult>, String> {
        let map = self.results.lock();
        let mut out = Vec::with_capacity(map.len());
        for (_, r) in map.iter() {
            match r {
                Ok(s) => out.push(s.clone()),
                Err(e) => return Err(e.clone()),
            }
        }
        Ok(out)
    }
}

/// Workflow executor. Construct once per simulation.
#[derive(Debug, Clone)]
pub struct Executor {
    /// The cloud services.
    pub services: Services,
    /// CPU-work calibration (share the store's size scale).
    pub work: WorkModel,
    /// Job tracker receiving progress events.
    pub tracker: Tracker,
    /// Upper bound the autotuner may pick.
    pub max_autotune_workers: usize,
    /// Default per-function I/O window for shuffle stages that don't
    /// pin one (`StageKind::ShuffleSort::io_concurrency`). `1` is the
    /// historical strictly-sequential data plane.
    pub io_concurrency: usize,
    /// Lithops-style driver orchestration overhead per execution phase
    /// (job serialization + upload, invoke fan-out, COS future polling).
    /// Unbilled, but on the critical path.
    pub orchestration: SimDuration,
    /// Calibrated model parameters for `--exchange auto` planning.
    /// `None` derives parameters from the service configurations at
    /// plan time ([`ModelParams::from_configs`]).
    pub plan_params: Option<ModelParams>,
}

impl Executor {
    /// Creates an executor with the given services and work model.
    pub fn new(services: Services, work: WorkModel, tracker: Tracker) -> Executor {
        Executor {
            services,
            work,
            tracker,
            max_autotune_workers: 64,
            io_concurrency: SortConfig::default().io_concurrency,
            orchestration: SimDuration::from_millis(8_000),
            plan_params: None,
        }
    }

    /// Sets the default shuffle I/O window (see
    /// [`Executor::io_concurrency`]).
    #[must_use]
    pub fn with_io_concurrency(mut self, io_concurrency: usize) -> Executor {
        self.io_concurrency = io_concurrency.max(1);
        self
    }

    /// Supplies calibrated model parameters for `--exchange auto`
    /// planning (see [`Executor::plan_params`]).
    #[must_use]
    pub fn with_plan_params(mut self, params: ModelParams) -> Executor {
        self.plan_params = Some(params);
        self
    }

    /// Spawns the workflow's driver processes into `sim`. Run the sim to
    /// execute; inspect the returned handle afterwards.
    ///
    /// # Panics
    /// Panics if the DAG fails validation (construct via [`Dag::add_stage`]
    /// to make that impossible).
    pub fn spawn_dag(&self, sim: &mut Sim, dag: &Dag) -> DagHandle {
        // Spawning into an un-started sim never suspends, so the single
        // eager poll of `run_blocking` completes the whole future.
        faaspipe_des::run_blocking(self.spawn_dag_with(dag, DagSpawner::Sim(sim)))
    }

    /// Like [`Executor::spawn_dag`], but launched from *inside* a running
    /// simulation — the caller is a live process (a cluster's per-run
    /// driver) and the DAG starts at the current virtual time.
    /// `ctx.join(handle.root)` to rendezvous with completion.
    pub fn spawn_dag_in(&self, ctx: &Ctx, dag: &Dag) -> DagHandle {
        faaspipe_des::run_blocking(self.spawn_dag_in_async(ctx, dag))
    }

    /// Async form of [`Executor::spawn_dag_in`] for stackless callers.
    pub async fn spawn_dag_in_async(&self, ctx: &Ctx, dag: &Dag) -> DagHandle {
        self.spawn_dag_with(dag, DagSpawner::Live(ctx)).await
    }

    async fn spawn_dag_with(&self, dag: &Dag, mut spawner: DagSpawner<'_>) -> DagHandle {
        dag.validate().expect("DAG must be valid");
        let results: ResultMap = Arc::new(Mutex::new(BTreeMap::new()));
        let mut pids: Vec<ProcessId> = Vec::with_capacity(dag.len());
        for (idx, stage) in dag.stages().iter().enumerate() {
            // The planner's makespan objective extends through any encode
            // stage fed by this one: a wide shuffle that leaves the encode
            // gang more runs than workers is not actually faster.
            let downstream_encode: usize = dag
                .stages()
                .iter()
                .filter(|s| s.deps.iter().any(|d| d.0 == idx))
                .filter_map(|s| match &s.kind {
                    StageKind::Encode { workers, .. } => Some(*workers),
                    _ => None,
                })
                .max()
                .unwrap_or(0);
            let dep_pids: Vec<ProcessId> = stage.deps.iter().map(|d| pids[d.0]).collect();
            let dep_names: Vec<String> = stage
                .deps
                .iter()
                .map(|d| dag.stages()[d.0].name.clone())
                .collect();
            let stage2 = stage.clone();
            let bucket = dag.bucket.clone();
            let exec = self.clone();
            let results2 = Arc::clone(&results);
            let pid = spawner
                .spawn(
                    format!("stage:{}", stage.name),
                    Box::new(move |ctx: &mut Ctx| {
                        Box::pin(async move {
                            // Wait for dependencies; skip if any failed.
                            for (pid, name) in dep_pids.iter().zip(&dep_names) {
                                if ctx.join_async(*pid).await.is_err() {
                                    results2.lock().insert(
                                        stage2.name.clone(),
                                        Err(format!("dependency driver '{}' crashed", name)),
                                    );
                                    return;
                                }
                            }
                            {
                                let map = results2.lock();
                                for name in &dep_names {
                                    if matches!(map.get(name), Some(Err(_)) | None) {
                                        drop(map);
                                        results2.lock().insert(
                                            stage2.name.clone(),
                                            Err(format!("dependency '{}' failed", name)),
                                        );
                                        return;
                                    }
                                }
                            }
                            exec.tracker.stage_start(ctx, &stage2.name);
                            let started = ctx.now();
                            let outcome = exec
                                .run_stage(ctx, &bucket, &stage2, downstream_encode)
                                .await;
                            exec.tracker.stage_end(ctx, &stage2.name);
                            let finished = ctx.now();
                            let entry = outcome.map(|(workers_used, output_bytes)| StageResult {
                                stage: stage2.name.clone(),
                                started,
                                finished,
                                workers_used,
                                output_bytes,
                            });
                            results2.lock().insert(stage2.name.clone(), entry);
                        }) as LocalBoxFuture<'_, ()>
                    }),
                )
                .await;
            pids.push(pid);
        }
        // Root process: the workflow completes when every stage driver has.
        let all = pids.clone();
        let root = spawner
            .spawn(
                "workflow:root".to_string(),
                Box::new(move |ctx: &mut Ctx| {
                    Box::pin(async move {
                        for pid in all {
                            let _ = ctx.join_async(pid).await;
                        }
                    }) as LocalBoxFuture<'_, ()>
                }),
            )
            .await;
        DagHandle { root, results }
    }

    /// Charges one driver orchestration phase (job serialization,
    /// invoke fan-out, future polling), recording it as an
    /// [`Category::Orchestration`] span when tracing is on.
    async fn orchestrate(&self, ctx: &Ctx) {
        let trace = self.services.store.trace_sink();
        if !trace.is_enabled() {
            ctx.sleep_async(self.orchestration).await;
            return;
        }
        let parent = trace.current(ctx.pid());
        let span = trace.span_start(
            Category::Orchestration,
            "orchestration",
            "driver",
            "driver",
            parent,
            ctx.now(),
        );
        ctx.sleep_async(self.orchestration).await;
        trace.span_end(span, ctx.now());
    }

    async fn run_stage(
        &self,
        ctx: &mut Ctx,
        bucket: &str,
        stage: &Stage,
        downstream_encode: usize,
    ) -> Result<(usize, u64), String> {
        match &stage.kind {
            StageKind::ShuffleSort {
                workers,
                exchange,
                io_concurrency,
                input,
                output,
            } => {
                self.exec_shuffle(
                    ctx,
                    bucket,
                    &stage.name,
                    *workers,
                    *exchange,
                    *io_concurrency,
                    downstream_encode,
                    input,
                    output,
                )
                .await
            }
            StageKind::VmSort {
                profile,
                runs,
                input,
                output,
            } => {
                // Job submission overhead before the VM work starts.
                self.orchestrate(ctx).await;
                let cfg = VmSortConfig {
                    bucket: bucket.to_string(),
                    input_prefix: input.clone(),
                    output_prefix: output.clone(),
                    runs: *runs,
                    profile: profile.clone(),
                    tag: stage.name.clone(),
                    work: self.work.clone(),
                    retries: 3,
                    release: true,
                    manifest_key: None,
                };
                let stats = vm_sort_async::<MethRecord>(
                    ctx,
                    &self.services.fleet,
                    &self.services.store,
                    &cfg,
                )
                .await
                .map_err(|e| format!("vm sort failed: {}", e))?;
                self.tracker.note(
                    ctx,
                    &stage.name,
                    format!(
                        "vm sort: provision {:.1}s, download {:.1}s, sort {:.1}s, upload {:.1}s",
                        stats.provision_duration.as_secs_f64(),
                        stats.download_duration.as_secs_f64(),
                        stats.sort_duration.as_secs_f64(),
                        stats.upload_duration.as_secs_f64()
                    ),
                );
                Ok((1, stats.output_bytes))
            }
            StageKind::Encode {
                codec,
                workers,
                input,
                output,
            } => {
                self.exec_encode(ctx, bucket, &stage.name, *codec, *workers, input, output)
                    .await
            }
            StageKind::Decode {
                workers,
                input,
                output,
            } => {
                self.exec_decode(ctx, bucket, &stage.name, *workers, input, output)
                    .await
            }
        }
    }

    async fn exec_decode(
        &self,
        ctx: &mut Ctx,
        bucket: &str,
        stage: &str,
        workers: usize,
        input: &str,
        output: &str,
    ) -> Result<(usize, u64), String> {
        self.orchestrate(ctx).await;
        let store = &self.services.store;
        let client = store.connect_async(ctx, format!("{}/driver", stage)).await;
        let inputs = client
            .list_async(ctx, bucket, input)
            .await
            .map_err(|e| format!("decode list failed: {}", e))?;
        if inputs.is_empty() {
            return Err(format!("no decode inputs under '{}'", input));
        }
        let written: Arc<Mutex<u64>> = Arc::new(Mutex::new(0));
        let mut handles = Vec::with_capacity(workers);
        for wi in 0..workers {
            let assigned: Vec<String> = inputs
                .iter()
                .enumerate()
                .filter(|(i, _)| i % workers == wi)
                .map(|(_, o)| o.key.clone())
                .collect();
            if assigned.is_empty() {
                continue;
            }
            let store = Arc::clone(store);
            let work = self.work.clone();
            let written = Arc::clone(&written);
            let bucket = bucket.to_string();
            let stage2 = stage.to_string();
            let output = output.to_string();
            let h = self
                .services
                .faas
                .invoke_task(
                    ctx,
                    "decode",
                    format!("{}/dec", stage),
                    async move |fctx: &mut Ctx, env: faaspipe_faas::FunctionEnv| {
                        let client = store
                            .connect_via_async(fctx, format!("{}/dec", stage2), &[env.nic])
                            .await;
                        for key in &assigned {
                            let archive = client
                                .get_async(fctx, &bucket, key)
                                .await
                                .unwrap_or_else(|e| panic!("decode read failed: {}", e));
                            let dataset = mc_codec::decompress(&archive)
                                .unwrap_or_else(|e| panic!("archive corrupt: {}", e));
                            let data = SortRecord::write_all(&dataset.records);
                            env.compute_async(fctx, work.methcomp_decode_time(data.len()))
                                .await;
                            *written.lock() += data.len() as u64;
                            let leaf = key.rsplit('/').next().unwrap_or(key);
                            let out_key = format!("{}{}", output, leaf);
                            client
                                .put_async(fctx, &bucket, &out_key, Bytes::from(data))
                                .await
                                .unwrap_or_else(|e| panic!("decode write failed: {}", e));
                        }
                    },
                )
                .await;
            handles.push(h);
        }
        ctx.join_all_async(&handles)
            .await
            .map_err(|e| format!("decode task failed: {}", e))?;
        let bytes = *written.lock();
        Ok((workers.min(inputs.len()), bytes))
    }

    /// Builds the intermediate data-exchange backend a shuffle stage
    /// asked for. Object-store layouts return `None` — the sort operator
    /// constructs its default [`ObjectStoreExchange`]
    /// (faaspipe_exchange::ObjectStoreExchange) over the stage's own
    /// `part_prefix`. The relay and direct backends share the store's
    /// size scale so wire bytes stay comparable, and the relay VM comes
    /// from the executor's fleet so its billing lands in the cost report.
    fn exchange_backend(&self, exchange: ExchangeKind) -> Option<Arc<dyn DataExchange>> {
        let scale = self.services.store.config().size_scale;
        let trace = self.services.store.trace_sink();
        match exchange {
            ExchangeKind::Scatter | ExchangeKind::Coalesced => None,
            ExchangeKind::VmRelay => {
                let relay = VmRelayExchange::new(
                    self.services.fleet.clone(),
                    RelayConfig {
                        size_scale: scale,
                        ..RelayConfig::default()
                    },
                )
                .with_trace(trace);
                Some(Arc::new(relay))
            }
            ExchangeKind::Direct => {
                let direct = DirectExchange::new(DirectConfig {
                    keep_alive: self.services.faas.config().keep_alive,
                    size_scale: scale,
                    ..DirectConfig::default()
                })
                .with_trace(trace);
                Some(Arc::new(direct))
            }
            ExchangeKind::ShardedRelay { shards, prewarm } => {
                let sharded = ShardedRelayExchange::new(
                    self.services.fleet.clone(),
                    ShardedRelayConfig {
                        relay: RelayConfig {
                            size_scale: scale,
                            ..RelayConfig::default()
                        },
                        shards,
                        prewarm,
                    },
                )
                .with_trace(trace);
                Some(Arc::new(sharded))
            }
            ExchangeKind::Auto => unreachable!(
                "ExchangeKind::Auto is resolved by the planner before a backend is constructed"
            ),
        }
    }

    /// Resolves `--exchange auto` for one shuffle stage: LISTs the
    /// stage's inputs to size the [`Workload`], runs the
    /// [`Planner`] over the calibrated parameters (or config-derived
    /// defaults), and records the decision as a zero-width
    /// [`Category::Planner`] span plus a tracker note. Dimensions the
    /// spec pins (a fixed worker count, an explicit `io_concurrency`)
    /// constrain the search instead of being overridden.
    #[allow(clippy::too_many_arguments)]
    async fn plan_stage(
        &self,
        ctx: &mut Ctx,
        bucket: &str,
        stage: &str,
        input: &str,
        choice: WorkerChoice,
        io_concurrency: Option<usize>,
        downstream_encode: usize,
    ) -> Result<Plan, String> {
        let store = &self.services.store;
        let client = store.connect_async(ctx, format!("{}/plan", stage)).await;
        let inputs = client
            .list_async(ctx, bucket, input)
            .await
            .map_err(|e| format!("plan list failed: {}", e))?;
        if inputs.is_empty() {
            return Err(format!("no shuffle inputs under '{}'", input));
        }
        let cfg = store.config();
        let scaled: Vec<f64> = inputs
            .iter()
            .map(|o| cfg.scaled_len(o.len.as_u64() as usize) as f64)
            .collect();
        let data_bytes: f64 = scaled.iter().sum();
        // The sample phase range-reads at most `sample_bytes` physical
        // bytes per chunk; on the wire that is the scaled cap, clamped
        // to the (scaled) chunk itself.
        let sample_cap = cfg.scaled_len(SortConfig::default().sample_bytes as usize) as f64;
        let sample_read_bytes =
            scaled.iter().map(|&s| s.min(sample_cap)).sum::<f64>() / scaled.len() as f64;
        let workload = Workload {
            data_bytes,
            input_chunks: inputs.len(),
            sample_read_bytes,
            encode_workers: downstream_encode,
        };
        let params = self.plan_params.clone().unwrap_or_else(|| {
            let mut p = ModelParams::from_configs(
                cfg,
                self.services.faas.config(),
                &RelayConfig::default(),
                &DirectConfig::default(),
                &self.work,
            );
            p.orchestration_s = self.orchestration.as_secs_f64();
            p
        });
        let mut space = SearchSpace::default().cap_workers(self.max_autotune_workers);
        if let WorkerChoice::Fixed(n) = choice {
            space = space.pin_workers(n);
        }
        if let Some(k) = io_concurrency {
            space = space.pin_io(k);
        }
        let plan = Planner::new(params).with_space(space).plan(&workload);
        let trace = store.trace_sink();
        if trace.is_enabled() {
            let parent = trace.current(ctx.pid());
            let span = trace.span_start(
                Category::Planner,
                "plan",
                "driver",
                "driver",
                parent,
                ctx.now(),
            );
            trace.attr(span, "workers", plan.workers);
            trace.attr(span, "io_concurrency", plan.io_concurrency);
            trace.attr(span, "exchange", plan.exchange.to_string());
            trace.attr(span, "predicted_makespan_s", plan.predicted.makespan_s);
            trace.attr(span, "predicted_cost_dollars", plan.predicted.cost_dollars);
            trace.attr(span, "evaluated", plan.evaluated);
            trace.attr(span, "pruned", plan.pruned);
            trace.span_end(span, ctx.now());
        }
        self.tracker.note(
            ctx,
            stage,
            format!(
                "planner picked W={}, K={}, {} (predicted {:.1}s, ${:.4}; {} evaluated, {} pruned)",
                plan.workers,
                plan.io_concurrency,
                plan.exchange,
                plan.predicted.makespan_s,
                plan.predicted.cost_dollars,
                plan.evaluated,
                plan.pruned
            ),
        );
        Ok(plan)
    }

    #[allow(clippy::too_many_arguments)]
    async fn exec_shuffle(
        &self,
        ctx: &mut Ctx,
        bucket: &str,
        stage: &str,
        choice: WorkerChoice,
        exchange: ExchangeKind,
        io_concurrency: Option<usize>,
        downstream_encode: usize,
        input: &str,
        output: &str,
    ) -> Result<(usize, u64), String> {
        // `auto` resolves every open dimension up front; explicit
        // backends keep the historical path (and its virtual timings)
        // untouched.
        let planned = if exchange == ExchangeKind::Auto {
            Some(
                self.plan_stage(
                    ctx,
                    bucket,
                    stage,
                    input,
                    choice,
                    io_concurrency,
                    downstream_encode,
                )
                .await?,
            )
        } else {
            None
        };
        if let Some(plan) = &planned {
            return self
                .run_shuffle(
                    ctx,
                    bucket,
                    stage,
                    plan.workers,
                    plan.exchange,
                    plan.io_concurrency,
                    input,
                    output,
                )
                .await;
        }
        let io_concurrency = io_concurrency.unwrap_or(self.io_concurrency);
        let workers = match choice {
            WorkerChoice::Fixed(n) => n,
            WorkerChoice::Auto => {
                let store = &self.services.store;
                let tuner = Autotuner::probe_async(ctx, store, bucket)
                    .await
                    .map_err(|e| format!("autotune probe failed: {}", e))?;
                let client = store
                    .connect_async(ctx, format!("{}/autotune", stage))
                    .await;
                let inputs = client
                    .list_async(ctx, bucket, input)
                    .await
                    .map_err(|e| format!("autotune list failed: {}", e))?;
                let modeled: f64 = inputs
                    .iter()
                    .map(|o| store.config().scaled_len(o.len.as_u64() as usize) as f64)
                    .sum();
                let faas_cfg = self.services.faas.config();
                // The probe measured the driver's connection; functions
                // are additionally capped by their container NIC.
                let tuner = Autotuner {
                    measured_conn_bw: tuner
                        .measured_conn_bw
                        .min(faas_cfg.nic_bw.as_bytes_per_sec()),
                    ..tuner
                };
                let model = tuner.model(
                    modeled,
                    inputs.len(),
                    store,
                    faas_cfg.cold_start.as_secs_f64(),
                    faas_cfg.cpu_share(),
                    self.work.sort_mibps * 1024.0 * 1024.0,
                    self.work.merge_mibps * 1024.0 * 1024.0,
                    self.max_autotune_workers,
                );
                let w = model.best_workers();
                self.tracker.note(
                    ctx,
                    stage,
                    format!(
                        "autotuner picked {} workers (measured {:.0} ms latency, {:.0} MiB/s)",
                        w,
                        tuner.measured_latency_s * 1e3,
                        tuner.measured_conn_bw / (1024.0 * 1024.0)
                    ),
                );
                w
            }
        };
        self.run_shuffle(
            ctx,
            bucket,
            stage,
            workers,
            exchange,
            io_concurrency,
            input,
            output,
        )
        .await
    }

    /// Runs the serverless sort with fully resolved knobs (the shared
    /// tail of the explicit and planned shuffle paths).
    #[allow(clippy::too_many_arguments)]
    async fn run_shuffle(
        &self,
        ctx: &mut Ctx,
        bucket: &str,
        stage: &str,
        workers: usize,
        exchange: ExchangeKind,
        io_concurrency: usize,
        input: &str,
        output: &str,
    ) -> Result<(usize, u64), String> {
        let cfg = SortConfig {
            workers,
            bucket: bucket.to_string(),
            input_prefix: input.to_string(),
            output_prefix: output.to_string(),
            part_prefix: format!("tmp/{}/", stage),
            sample_capacity: 512,
            sample_bytes: 64 * 1024,
            sample_seed: SortConfig::default().sample_seed,
            tag: stage.to_string(),
            work: self.work.clone(),
            retries: 3,
            orchestration: self.orchestration,
            exchange: exchange.layout(),
            backend: self.exchange_backend(exchange),
            task_attempts: 2,
            io_concurrency: io_concurrency.max(1),
            manifest_key: None,
        };
        let stats = serverless_sort_async::<MethRecord>(
            ctx,
            &self.services.faas,
            &self.services.store,
            &cfg,
        )
        .await
        .map_err(|e| format!("serverless sort failed: {}", e))?;
        self.tracker.note(
            ctx,
            stage,
            format!(
                "shuffle: sample {:.1}s, map {:.1}s, reduce {:.1}s ({} workers)",
                stats.sample_duration.as_secs_f64(),
                stats.map_duration.as_secs_f64(),
                stats.reduce_duration.as_secs_f64(),
                stats.workers
            ),
        );
        Ok((workers, stats.output_bytes))
    }

    #[allow(clippy::too_many_arguments)]
    async fn exec_encode(
        &self,
        ctx: &mut Ctx,
        bucket: &str,
        stage: &str,
        codec: EncodeCodec,
        workers: usize,
        input: &str,
        output: &str,
    ) -> Result<(usize, u64), String> {
        self.orchestrate(ctx).await;
        let store = &self.services.store;
        let client = store.connect_async(ctx, format!("{}/driver", stage)).await;
        let inputs = client
            .list_async(ctx, bucket, input)
            .await
            .map_err(|e| format!("encode list failed: {}", e))?;
        if inputs.is_empty() {
            return Err(format!("no encode inputs under '{}'", input));
        }
        let written: Arc<Mutex<u64>> = Arc::new(Mutex::new(0));
        let mut handles = Vec::with_capacity(workers);
        for wi in 0..workers {
            let assigned: Vec<String> = inputs
                .iter()
                .enumerate()
                .filter(|(i, _)| i % workers == wi)
                .map(|(_, o)| o.key.clone())
                .collect();
            if assigned.is_empty() {
                continue;
            }
            let store = Arc::clone(store);
            let work = self.work.clone();
            let written = Arc::clone(&written);
            let bucket = bucket.to_string();
            let stage2 = stage.to_string();
            let output = output.to_string();
            let h = self
                .services
                .faas
                .invoke_task(
                    ctx,
                    "encode",
                    format!("{}/enc", stage),
                    async move |fctx: &mut Ctx, env: faaspipe_faas::FunctionEnv| {
                        let client = store
                            .connect_via_async(fctx, format!("{}/enc", stage2), &[env.nic])
                            .await;
                        for key in &assigned {
                            let data = client
                                .get_async(fctx, &bucket, key)
                                .await
                                .unwrap_or_else(|e| panic!("encode read failed: {}", e));
                            let records: Vec<MethRecord> = SortRecord::read_all(&data)
                                .unwrap_or_else(|e| panic!("encode decode failed: {}", e));
                            let dataset = Dataset::new(records);
                            // The codec kernels run on the offload pool;
                            // the virtual charge is identical to the old
                            // inline compute + kernel sequence.
                            let packed = match codec {
                                EncodeCodec::Methcomp => {
                                    env.compute_offload(
                                        fctx,
                                        work.methcomp_encode_time(data.len()),
                                        move || mc_codec::compress(&dataset),
                                    )
                                    .await
                                }
                                EncodeCodec::Gzipish => {
                                    env.compute_offload(
                                        fctx,
                                        work.gzip_encode_time(data.len()),
                                        move || {
                                            faaspipe_codec::gzipish::compress(
                                                dataset.to_text().as_bytes(),
                                            )
                                        },
                                    )
                                    .await
                                }
                            };
                            *written.lock() += packed.len() as u64;
                            let leaf = key.rsplit('/').next().unwrap_or(key);
                            let out_key = format!("{}{}", output, leaf);
                            client
                                .put_async(fctx, &bucket, &out_key, Bytes::from(packed))
                                .await
                                .unwrap_or_else(|e| panic!("encode write failed: {}", e));
                        }
                    },
                )
                .await;
            handles.push(h);
        }
        ctx.join_all_async(&handles)
            .await
            .map_err(|e| format!("encode task failed: {}", e))?;
        let bytes = *written.lock();
        Ok((workers.min(inputs.len()), bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faaspipe_des::SimDuration;
    use faaspipe_faas::FaasConfig;
    use faaspipe_methcomp::synth::Synthesizer;
    use faaspipe_store::StoreConfig;
    use faaspipe_vm::VmProfile;

    fn setup(records: usize, chunks: usize) -> (Sim, Services, Dataset) {
        let mut sim = Sim::new();
        let store = ObjectStore::install(&mut sim, StoreConfig::default());
        let faas = FunctionPlatform::install(&mut sim, FaasConfig::default());
        let fleet = VmFleet::new();
        store.create_bucket("data").expect("bucket");
        let ds = Synthesizer::new(31).generate_shuffled(records);
        let per = ds.records.len().div_ceil(chunks);
        for (i, chunk) in ds.records.chunks(per).enumerate() {
            let data = SortRecord::write_all(chunk);
            store
                .put_untimed("data", &format!("in/{:04}", i), Bytes::from(data))
                .expect("stage input");
        }
        (sim, Services { store, faas, fleet }, ds)
    }

    fn verify_outputs(services: &Services, ds: &Dataset, runs: usize) {
        // Sorted runs concatenated must equal the sorted input; each
        // archive must decompress back to its run.
        let mut expect = ds.clone();
        expect.sort();
        let mut all = Vec::new();
        for j in 0..runs {
            let run = services
                .store
                .peek("data", &format!("sorted/{:05}", j))
                .expect("run exists");
            let mut records: Vec<MethRecord> = SortRecord::read_all(&run).expect("decode");
            let archive = services
                .store
                .peek("data", &format!("enc/{:05}", j))
                .expect("archive exists");
            let decoded = mc_codec::decompress(&archive).expect("archive decodes");
            assert_eq!(decoded.records, records, "archive {} round trip", j);
            all.append(&mut records);
        }
        assert_eq!(all, expect.records, "global sort order");
    }

    #[test]
    fn linear_methcomp_dag_runs_and_verifies() {
        let (mut sim, services, ds) = setup(6_000, 4);
        let tracker = Tracker::new();
        let exec = Executor::new(services.clone(), WorkModel::default(), tracker.clone());
        let mut dag = Dag::new("methcomp", "data");
        dag.add_stage(
            "sort",
            StageKind::ShuffleSort {
                workers: WorkerChoice::Fixed(4),
                exchange: ExchangeKind::Scatter,
                io_concurrency: None,
                input: "in/".into(),
                output: "sorted/".into(),
            },
            &[],
        )
        .expect("sort");
        dag.add_stage(
            "encode",
            StageKind::Encode {
                codec: EncodeCodec::Methcomp,
                workers: 4,
                input: "sorted/".into(),
                output: "enc/".into(),
            },
            &["sort"],
        )
        .expect("encode");
        let handle = exec.spawn_dag(&mut sim, &dag);
        sim.run().expect("sim ok");
        let results = handle.ok_results().expect("all stages ok");
        assert_eq!(results.len(), 2);
        verify_outputs(&services, &ds, 4);
        let spans = tracker.spans();
        assert_eq!(spans.len(), 2);
        assert!(spans[0].finished <= spans[1].started + SimDuration::from_millis(1));
    }

    #[test]
    fn vm_dag_runs_and_verifies() {
        let (mut sim, services, ds) = setup(4_000, 4);
        let exec = Executor::new(services.clone(), WorkModel::default(), Tracker::new());
        let mut dag = Dag::new("methcomp-vm", "data");
        dag.add_stage(
            "sort",
            StageKind::VmSort {
                profile: VmProfile::bx2_8x32(),
                runs: 4,
                input: "in/".into(),
                output: "sorted/".into(),
            },
            &[],
        )
        .expect("sort");
        dag.add_stage(
            "encode",
            StageKind::Encode {
                codec: EncodeCodec::Methcomp,
                workers: 4,
                input: "sorted/".into(),
                output: "enc/".into(),
            },
            &["sort"],
        )
        .expect("encode");
        let handle = exec.spawn_dag(&mut sim, &dag);
        sim.run().expect("sim ok");
        handle.ok_results().expect("all stages ok");
        verify_outputs(&services, &ds, 4);
        assert_eq!(services.fleet.records().len(), 1);
    }

    #[test]
    fn autotuned_shuffle_picks_plausible_workers() {
        let (mut sim, services, _) = setup(6_000, 4);
        let tracker = Tracker::new();
        let exec = Executor::new(services.clone(), WorkModel::default(), tracker.clone());
        let mut dag = Dag::new("auto", "data");
        dag.add_stage(
            "sort",
            StageKind::ShuffleSort {
                workers: WorkerChoice::Auto,
                exchange: ExchangeKind::Coalesced,
                io_concurrency: None,
                input: "in/".into(),
                output: "sorted/".into(),
            },
            &[],
        )
        .expect("sort");
        let handle = exec.spawn_dag(&mut sim, &dag);
        sim.run().expect("sim ok");
        let results = handle.ok_results().expect("ok");
        assert!((1..=64).contains(&results[0].workers_used));
        assert!(tracker.render().contains("autotuner picked"));
    }

    #[test]
    fn round_trip_dag_sort_encode_decode() {
        // sort -> encode -> decode: the decoded runs must be byte-equal to
        // the sorted runs (the full producer/consumer loop).
        let (mut sim, services, _) = setup(4_000, 4);
        let exec = Executor::new(services.clone(), WorkModel::default(), Tracker::new());
        let mut dag = Dag::new("roundtrip", "data");
        dag.add_stage(
            "sort",
            StageKind::ShuffleSort {
                workers: WorkerChoice::Fixed(4),
                exchange: ExchangeKind::Coalesced,
                io_concurrency: None,
                input: "in/".into(),
                output: "sorted/".into(),
            },
            &[],
        )
        .expect("sort");
        dag.add_stage(
            "encode",
            StageKind::Encode {
                codec: EncodeCodec::Methcomp,
                workers: 4,
                input: "sorted/".into(),
                output: "enc/".into(),
            },
            &["sort"],
        )
        .expect("encode");
        dag.add_stage(
            "decode",
            StageKind::Decode {
                workers: 4,
                input: "enc/".into(),
                output: "dec/".into(),
            },
            &["encode"],
        )
        .expect("decode");
        let handle = exec.spawn_dag(&mut sim, &dag);
        sim.run().expect("sim ok");
        handle.ok_results().expect("all stages ok");
        let runs = services.store.keys_untimed("data", "sorted/");
        assert_eq!(runs.len(), 4);
        for key in runs {
            let leaf = key.trim_start_matches("sorted/");
            let original = services.store.peek("data", &key).expect("run");
            let decoded = services
                .store
                .peek("data", &format!("dec/{}", leaf))
                .expect("decoded run");
            assert_eq!(original, decoded, "decode must invert encode for {}", leaf);
        }
    }

    #[test]
    fn diamond_dag_branches_run_concurrently() {
        // sort -> (encode-mc, encode-gz) both depend on sort and must
        // overlap in virtual time.
        let (mut sim, services, _) = setup(4_000, 4);
        let tracker = Tracker::new();
        let exec = Executor::new(services.clone(), WorkModel::default(), tracker.clone());
        let mut dag = Dag::new("diamond", "data");
        dag.add_stage(
            "sort",
            StageKind::ShuffleSort {
                workers: WorkerChoice::Fixed(4),
                exchange: ExchangeKind::Coalesced,
                io_concurrency: None,
                input: "in/".into(),
                output: "sorted/".into(),
            },
            &[],
        )
        .expect("sort");
        dag.add_stage(
            "mc",
            StageKind::Encode {
                codec: EncodeCodec::Methcomp,
                workers: 4,
                input: "sorted/".into(),
                output: "enc-mc/".into(),
            },
            &["sort"],
        )
        .expect("mc");
        dag.add_stage(
            "gz",
            StageKind::Encode {
                codec: EncodeCodec::Gzipish,
                workers: 4,
                input: "sorted/".into(),
                output: "enc-gz/".into(),
            },
            &["sort"],
        )
        .expect("gz");
        let handle = exec.spawn_dag(&mut sim, &dag);
        sim.run().expect("sim ok");
        let results = handle.ok_results().expect("all stages ok");
        assert_eq!(results.len(), 3);
        let span = |name: &str| {
            results
                .iter()
                .find(|s| s.stage == name)
                .map(|s| (s.started, s.finished))
                .expect("stage ran")
        };
        let (sort_start, sort_end) = span("sort");
        let (mc_start, mc_end) = span("mc");
        let (gz_start, gz_end) = span("gz");
        assert!(sort_start < sort_end);
        assert!(
            mc_start >= sort_end && gz_start >= sort_end,
            "deps respected"
        );
        // Branches overlap: each starts before the other finishes.
        assert!(
            mc_start < gz_end && gz_start < mc_end,
            "branches must overlap"
        );
        // Both encodes produced archives for all four runs.
        assert_eq!(services.store.keys_untimed("data", "enc-mc/").len(), 4);
        assert_eq!(services.store.keys_untimed("data", "enc-gz/").len(), 4);
    }

    #[test]
    fn spawn_dag_in_launches_from_a_live_process() {
        // A cluster's per-run driver spawns the DAG mid-simulation; the
        // stages start at the driver's current virtual time, not zero.
        let (mut sim, services, ds) = setup(3_000, 2);
        let exec = Executor::new(services.clone(), WorkModel::default(), Tracker::new());
        let mut dag = Dag::new("late", "data");
        dag.add_stage(
            "sort",
            StageKind::ShuffleSort {
                workers: WorkerChoice::Fixed(2),
                exchange: ExchangeKind::Coalesced,
                io_concurrency: None,
                input: "in/".into(),
                output: "sorted/".into(),
            },
            &[],
        )
        .expect("sort");
        let results: Arc<Mutex<Vec<StageResult>>> = Arc::new(Mutex::new(Vec::new()));
        let results2 = Arc::clone(&results);
        sim.spawn("run-driver", move |ctx| {
            ctx.sleep(SimDuration::from_secs(40));
            let handle = exec.spawn_dag_in(ctx, &dag);
            ctx.join(handle.root).expect("workflow");
            *results2.lock() = handle.ok_results().expect("ok");
        });
        sim.run().expect("sim ok");
        let results = results.lock();
        assert_eq!(results.len(), 1);
        assert!(
            results[0].started >= SimTime::ZERO + SimDuration::from_secs(40),
            "stage must start after the driver launched it"
        );
        verify_outputs_sorted_only(&services, &ds, 2);
    }

    fn verify_outputs_sorted_only(services: &Services, ds: &Dataset, runs: usize) {
        let mut expect = ds.clone();
        expect.sort();
        let mut all = Vec::new();
        for j in 0..runs {
            let run = services
                .store
                .peek("data", &format!("sorted/{:05}", j))
                .expect("run exists");
            let mut records: Vec<MethRecord> = SortRecord::read_all(&run).expect("decode");
            all.append(&mut records);
        }
        assert_eq!(all, expect.records, "global sort order");
    }

    #[test]
    fn failed_stage_skips_dependents() {
        let (mut sim, services, _) = setup(1_000, 2);
        let exec = Executor::new(services.clone(), WorkModel::default(), Tracker::new());
        let mut dag = Dag::new("broken", "data");
        dag.add_stage(
            "sort",
            StageKind::ShuffleSort {
                workers: WorkerChoice::Fixed(2),
                exchange: ExchangeKind::Scatter,
                io_concurrency: None,
                input: "missing/".into(), // no such inputs
                output: "sorted/".into(),
            },
            &[],
        )
        .expect("sort");
        dag.add_stage(
            "encode",
            StageKind::Encode {
                codec: EncodeCodec::Methcomp,
                workers: 2,
                input: "sorted/".into(),
                output: "enc/".into(),
            },
            &["sort"],
        )
        .expect("encode");
        let handle = exec.spawn_dag(&mut sim, &dag);
        sim.run().expect("sim ok");
        let results = handle.results();
        assert!(results["sort"].is_err());
        let enc_err = results["encode"].as_ref().expect_err("skipped");
        assert!(enc_err.contains("dependency"), "{}", enc_err);
    }

    #[test]
    fn gzip_encode_stage_works() {
        let (mut sim, services, ds) = setup(3_000, 2);
        let exec = Executor::new(services.clone(), WorkModel::default(), Tracker::new());
        let mut dag = Dag::new("gz", "data");
        dag.add_stage(
            "sort",
            StageKind::ShuffleSort {
                workers: WorkerChoice::Fixed(2),
                exchange: ExchangeKind::Coalesced,
                io_concurrency: None,
                input: "in/".into(),
                output: "sorted/".into(),
            },
            &[],
        )
        .expect("sort");
        dag.add_stage(
            "encode",
            StageKind::Encode {
                codec: EncodeCodec::Gzipish,
                workers: 2,
                input: "sorted/".into(),
                output: "enc/".into(),
            },
            &["sort"],
        )
        .expect("encode");
        let handle = exec.spawn_dag(&mut sim, &dag);
        sim.run().expect("sim ok");
        handle.ok_results().expect("ok");
        // Archives decompress to the text of each sorted run.
        let mut total = 0usize;
        for j in 0..2 {
            let run = services
                .store
                .peek("data", &format!("sorted/{:05}", j))
                .expect("run");
            let records: Vec<MethRecord> = SortRecord::read_all(&run).expect("decode");
            let text = Dataset::new(records).to_text();
            let archive = services
                .store
                .peek("data", &format!("enc/{:05}", j))
                .expect("archive");
            let unpacked = faaspipe_codec::gzipish::decompress(&archive).expect("gz decodes");
            assert_eq!(unpacked, text.as_bytes());
            total += unpacked.len();
        }
        assert_eq!(total, {
            let mut sorted = ds.clone();
            sorted.sort();
            sorted.to_text().len()
        });
    }
}
