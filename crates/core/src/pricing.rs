//! Price book and cost assembly (IBM-Cloud-like list prices, 2021).
//!
//! The paper's Table 1 cost "subsumes the following charges: the cost of
//! cloud functions, storage requests, and the VM expenses — i.e.,
//! execution time and storage volume". [`CostReport`] itemizes exactly
//! those, per stage and in total.

use std::collections::BTreeMap;

use faaspipe_des::{Money, SimTime};
use faaspipe_faas::InvocationRecord;
use faaspipe_store::{StoreMetrics, TagMetrics};
use faaspipe_vm::VmRecord;

/// List prices for the simulated cloud.
#[derive(Debug, Clone)]
pub struct PriceBook {
    /// Cloud functions: per GB-second of billed execution.
    pub fn_gb_second: Money,
    /// Object storage: per 1000 class-A (write/list) requests.
    pub store_class_a_per_k: Money,
    /// Object storage: per 1000 class-B (read) requests.
    pub store_class_b_per_k: Money,
    /// VM compute: per hour, by profile name (billed per second).
    pub vm_hourly: BTreeMap<String, Money>,
    /// VM boot-volume storage: per hour (the paper's "storage volume").
    pub vm_storage_hourly: Money,
}

impl Default for PriceBook {
    fn default() -> Self {
        let mut vm_hourly = BTreeMap::new();
        vm_hourly.insert("bx2-4x16".to_string(), Money::from_dollars(0.170));
        vm_hourly.insert("bx2-8x32".to_string(), Money::from_dollars(0.340));
        vm_hourly.insert("bx2-16x64".to_string(), Money::from_dollars(0.681));
        PriceBook {
            fn_gb_second: Money::from_dollars(0.000017),
            store_class_a_per_k: Money::from_dollars(0.005),
            store_class_b_per_k: Money::from_dollars(0.0004),
            vm_hourly,
            vm_storage_hourly: Money::from_dollars(0.007),
        }
    }
}

impl PriceBook {
    /// Cost of one function invocation record.
    pub fn function_cost(&self, rec: &InvocationRecord) -> Money {
        // Micro-dollar precision on GB-s, rounded per record like real
        // bills round per 100 ms slices.
        Money::from_dollars(rec.gb_seconds() * self.fn_gb_second.as_dollars())
    }

    /// Cost of a tag's storage requests.
    pub fn store_cost(&self, m: &TagMetrics) -> Money {
        Money::from_dollars(
            m.class_a as f64 / 1000.0 * self.store_class_a_per_k.as_dollars()
                + m.class_b as f64 / 1000.0 * self.store_class_b_per_k.as_dollars(),
        )
    }

    /// Cost of one VM record up to `upto` (used when unreleased).
    pub fn vm_cost(&self, rec: &VmRecord, upto: SimTime) -> Money {
        let hours = rec.billed_duration(upto).as_secs_f64() / 3600.0;
        let hourly = self
            .vm_hourly
            .get(&rec.profile.name)
            .copied()
            .unwrap_or_else(|| Money::from_dollars(0.34));
        Money::from_dollars(hours * (hourly.as_dollars() + self.vm_storage_hourly.as_dollars()))
    }

    /// Assembles the full itemized report. Stage attribution uses the tag
    /// prefix before the first `/` (the executor tags everything with the
    /// stage name).
    pub fn assemble(
        &self,
        fn_records: &[InvocationRecord],
        store_metrics: &StoreMetrics,
        vm_records: &[VmRecord],
        end: SimTime,
    ) -> CostReport {
        let mut by_stage: BTreeMap<String, StageCost> = BTreeMap::new();
        let mut functions = Money::ZERO;
        for rec in fn_records {
            let cost = self.function_cost(rec);
            functions += cost;
            by_stage.entry(stage_of(&rec.tag)).or_default().functions += cost;
        }
        let mut requests = Money::ZERO;
        for (tag, m) in store_metrics.iter() {
            let cost = self.store_cost(m);
            requests += cost;
            by_stage.entry(stage_of(tag)).or_default().requests += cost;
        }
        let mut vm = Money::ZERO;
        for rec in vm_records {
            let cost = self.vm_cost(rec, end);
            vm += cost;
            if cost > Money::ZERO {
                // Scoped records (cluster tenants) bill to their scope;
                // unscoped fleets keep the aggregate "vm" row.
                let key = if rec.scope.is_empty() {
                    "vm"
                } else {
                    rec.scope.as_str()
                };
                by_stage.entry(key.to_string()).or_default().vm += cost;
            }
        }
        CostReport {
            functions,
            requests,
            vm,
            by_stage,
        }
    }
}

fn stage_of(tag: &str) -> String {
    tag.split('/').next().unwrap_or(tag).to_string()
}

/// Per-stage cost components.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCost {
    /// Function GB-seconds.
    pub functions: Money,
    /// Storage requests.
    pub requests: Money,
    /// VM time + volume.
    pub vm: Money,
}

impl StageCost {
    /// Sum of the components.
    pub fn total(&self) -> Money {
        self.functions + self.requests + self.vm
    }
}

/// The itemized cost of a pipeline run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CostReport {
    /// Total function cost.
    pub functions: Money,
    /// Total storage-request cost.
    pub requests: Money,
    /// Total VM cost.
    pub vm: Money,
    /// Breakdown by stage (tag prefix).
    pub by_stage: BTreeMap<String, StageCost>,
}

impl CostReport {
    /// Grand total.
    pub fn total(&self) -> Money {
        self.functions + self.requests + self.vm
    }

    /// Renders the per-stage cost table the demo's tracker displays.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("stage        functions    requests          vm       total\n");
        for (stage, c) in &self.by_stage {
            out.push_str(&format!(
                "{:<12} {:>11} {:>11} {:>11} {:>11}\n",
                stage,
                c.functions.to_string(),
                c.requests.to_string(),
                c.vm.to_string(),
                c.total().to_string(),
            ));
        }
        out.push_str(&format!(
            "{:<12} {:>11} {:>11} {:>11} {:>11}\n",
            "TOTAL",
            self.functions.to_string(),
            self.requests.to_string(),
            self.vm.to_string(),
            self.total().to_string(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faaspipe_des::SimDuration;
    use faaspipe_vm::VmProfile;

    fn rec(tag: &str, secs: u64, memory_mb: u32) -> InvocationRecord {
        InvocationRecord {
            function: "f".into(),
            tag: tag.into(),
            requested: SimTime::ZERO,
            started: SimTime::ZERO,
            finished: SimTime::ZERO + SimDuration::from_secs(secs),
            memory_mb,
            cold: true,
        }
    }

    #[test]
    fn function_pricing_matches_gb_seconds() {
        let book = PriceBook::default();
        // 2 GiB for 10 s = 20 GB-s at $0.000017 = $0.00034.
        let cost = book.function_cost(&rec("sort/map", 10, 2048));
        assert_eq!(cost, Money::from_dollars(0.00034));
    }

    #[test]
    fn store_pricing_by_class() {
        let book = PriceBook::default();
        let m = TagMetrics {
            class_a: 2000,
            class_b: 10_000,
            ..TagMetrics::default()
        };
        // 2k * 0.005/k + 10k * 0.0004/k = 0.01 + 0.004.
        assert_eq!(book.store_cost(&m), Money::from_dollars(0.014));
    }

    #[test]
    fn vm_pricing_per_second_with_volume() {
        let book = PriceBook::default();
        let rec = VmRecord {
            id: 0,
            profile: VmProfile::bx2_8x32(),
            scope: String::new(),
            requested: SimTime::ZERO,
            ready: SimTime::ZERO + SimDuration::from_secs(52),
            released: Some(SimTime::ZERO + SimDuration::from_secs(3600)),
        };
        let cost = book.vm_cost(&rec, SimTime::MAX);
        assert_eq!(cost, Money::from_dollars(0.347));
    }

    #[test]
    fn scoped_vm_records_bill_to_their_tenant() {
        let book = PriceBook::default();
        let mk = |scope: &str| VmRecord {
            id: 0,
            profile: VmProfile::bx2_8x32(),
            scope: scope.to_string(),
            requested: SimTime::ZERO,
            ready: SimTime::ZERO,
            released: Some(SimTime::ZERO + SimDuration::from_secs(3600)),
        };
        let report = book.assemble(
            &[],
            &StoreMetrics::new(),
            &[mk("t0"), mk("t1"), mk("")],
            SimTime::ZERO,
        );
        assert_eq!(report.by_stage["t0"].vm, Money::from_dollars(0.347));
        assert_eq!(report.by_stage["t1"].vm, Money::from_dollars(0.347));
        assert_eq!(report.by_stage["vm"].vm, Money::from_dollars(0.347));
        assert_eq!(report.vm, Money::from_dollars(0.347 * 3.0));
    }

    #[test]
    fn assemble_attributes_stages_by_tag_prefix() {
        let book = PriceBook::default();
        let fns = vec![rec("sort/map", 10, 2048), rec("encode/enc", 5, 2048)];
        let mut metrics = StoreMetrics::new();
        for _ in 0..1000 {
            metrics.record(
                "sort/map",
                faaspipe_store::RequestClass::ClassA,
                0,
                0,
                false,
            );
        }
        let report = book.assemble(&fns, &metrics, &[], SimTime::ZERO);
        assert_eq!(report.by_stage.len(), 2);
        let sort = &report.by_stage["sort"];
        assert_eq!(sort.requests, Money::from_dollars(0.005));
        assert_eq!(sort.functions, Money::from_dollars(0.00034));
        assert_eq!(
            report.total(),
            report.functions + report.requests + report.vm
        );
        let rendered = report.render();
        assert!(rendered.contains("sort"));
        assert!(rendered.contains("TOTAL"));
    }

    #[test]
    fn unknown_vm_profile_gets_fallback_price() {
        let book = PriceBook::default();
        let mut profile = VmProfile::bx2_8x32();
        profile.name = "custom-1x1".into();
        let rec = VmRecord {
            id: 0,
            profile,
            scope: String::new(),
            requested: SimTime::ZERO,
            ready: SimTime::ZERO,
            released: Some(SimTime::ZERO + SimDuration::from_secs(3600)),
        };
        assert_eq!(book.vm_cost(&rec, SimTime::MAX), Money::from_dollars(0.347));
    }
}
