//! The job tracker: live per-stage progress and notes.
//!
//! Stands in for the paper's "IPython interface for job tracking in real
//! time, which displays the workflow progress and breaks the cost down at
//! each stage" (§2.4) — here an event log with text rendering; the cost
//! breakdown itself comes from [`crate::pricing::CostReport`].
//!
//! Since the introduction of `faaspipe-trace`, the tracker is a thin
//! front-end over a [`TraceSink`]: stage starts/ends become
//! [`Category::Stage`] spans and notes become zero-length annotation
//! spans, so a traced pipeline gets the tracker's view for free in its
//! exports. A standalone `Tracker::new()` records into a private sink and
//! behaves exactly as before.

use parking_lot::Mutex;
use std::sync::Arc;

use faaspipe_des::{Ctx, SimDuration, SimTime};
use faaspipe_trace::{Category, SpanId, TraceSink, Value};

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrackKind {
    /// A stage began executing.
    StageStart,
    /// A stage finished.
    StageEnd,
    /// Free-form progress note (e.g. "autotuner picked 13 workers").
    Note(String),
}

/// One tracker event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackEvent {
    /// Virtual time of the event.
    pub time: SimTime,
    /// Stage the event belongs to.
    pub stage: String,
    /// Event payload.
    pub kind: TrackKind,
}

/// Completed span of one stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSpan {
    /// Stage name.
    pub stage: String,
    /// Start time.
    pub started: SimTime,
    /// End time.
    pub finished: SimTime,
}

impl StageSpan {
    /// The stage's duration.
    pub fn duration(&self) -> SimDuration {
        self.finished.saturating_duration_since(self.started)
    }
}

/// Shared, cheaply clonable job tracker backed by a [`TraceSink`].
#[derive(Clone)]
pub struct Tracker {
    sink: TraceSink,
    parent: SpanId,
    open: Arc<Mutex<Vec<(String, SpanId)>>>,
}

impl std::fmt::Debug for Tracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracker").field("sink", &self.sink).finish()
    }
}

impl Default for Tracker {
    fn default() -> Tracker {
        Tracker::new()
    }
}

impl Tracker {
    /// Creates a standalone tracker recording into a private sink.
    pub fn new() -> Tracker {
        Tracker::with_sink(TraceSink::recording(), SpanId::NONE)
    }

    /// Creates a tracker recording into `sink`, parenting stage spans to
    /// `parent` (typically the pipeline's run span). With a disabled sink
    /// the tracker records nothing — pass a recording sink if the
    /// rendered log is wanted.
    pub fn with_sink(sink: TraceSink, parent: SpanId) -> Tracker {
        Tracker {
            sink,
            parent,
            open: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The sink this tracker records through.
    pub fn sink(&self) -> &TraceSink {
        &self.sink
    }

    /// Records a stage start at the current virtual time. The stage span
    /// is also pushed onto the calling process's open-span stack so
    /// service-level spans (invocations, store requests) parent to it.
    pub fn stage_start(&self, ctx: &Ctx, stage: &str) {
        let id = self.sink.span_start(
            Category::Stage,
            stage,
            "driver",
            "driver",
            self.parent,
            ctx.now(),
        );
        self.sink.enter(ctx.pid(), id);
        self.open.lock().push((stage.to_string(), id));
    }

    /// Records a stage end at the current virtual time.
    pub fn stage_end(&self, ctx: &Ctx, stage: &str) {
        let id = {
            let mut open = self.open.lock();
            match open.iter().rposition(|(name, _)| name == stage) {
                Some(pos) => open.remove(pos).1,
                None => return,
            }
        };
        self.sink.span_end(id, ctx.now());
        self.sink.exit(ctx.pid());
    }

    /// Records a free-form note (a zero-length annotation span).
    pub fn note(&self, ctx: &Ctx, stage: &str, message: impl Into<String>) {
        let parent = self
            .open
            .lock()
            .iter()
            .rev()
            .find(|(name, _)| name == stage)
            .map_or(self.parent, |(_, id)| *id);
        let now = ctx.now();
        let id = self.sink.span_start(
            Category::Orchestration,
            stage,
            "driver",
            "driver",
            parent,
            now,
        );
        self.sink.attr(id, "note", message.into());
        self.sink.span_end(id, now);
    }

    /// All events so far, in order.
    pub fn events(&self) -> Vec<TrackEvent> {
        let data = self.sink.snapshot();
        // Rank orders simultaneous events the way the live log did:
        // a stage's end precedes the next stage's start at the same time.
        let mut keyed: Vec<(SimTime, u8, u64, TrackEvent)> = Vec::new();
        for span in &data.spans {
            match span.category {
                Category::Stage if span.track == "driver" => {
                    keyed.push((
                        span.start,
                        2,
                        span.id.as_u64(),
                        TrackEvent {
                            time: span.start,
                            stage: span.name.clone(),
                            kind: TrackKind::StageStart,
                        },
                    ));
                    if let Some(end) = span.end {
                        keyed.push((
                            end,
                            0,
                            span.id.as_u64(),
                            TrackEvent {
                                time: end,
                                stage: span.name.clone(),
                                kind: TrackKind::StageEnd,
                            },
                        ));
                    }
                }
                Category::Orchestration => {
                    if let Some((_, Value::Str(msg))) = span.attrs.iter().find(|(k, _)| k == "note")
                    {
                        keyed.push((
                            span.start,
                            1,
                            span.id.as_u64(),
                            TrackEvent {
                                time: span.start,
                                stage: span.name.clone(),
                                kind: TrackKind::Note(msg.clone()),
                            },
                        ));
                    }
                }
                _ => {}
            }
        }
        keyed.sort_by_key(|(time, rank, id, _)| (*time, *rank, *id));
        keyed.into_iter().map(|(_, _, _, e)| e).collect()
    }

    /// Completed stage spans, in start order.
    pub fn spans(&self) -> Vec<StageSpan> {
        let data = self.sink.snapshot();
        let mut spans: Vec<StageSpan> = data
            .spans
            .iter()
            .filter(|s| s.category == Category::Stage && s.track == "driver")
            .filter_map(|s| {
                Some(StageSpan {
                    stage: s.name.clone(),
                    started: s.start,
                    finished: s.end?,
                })
            })
            .collect();
        spans.sort_by_key(|s| s.started);
        spans
    }

    /// Renders the progress log as text (the tracker display).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            let what = match &e.kind {
                TrackKind::StageStart => "started".to_string(),
                TrackKind::StageEnd => "finished".to_string(),
                TrackKind::Note(msg) => msg.clone(),
            };
            out.push_str(&format!(
                "[{:>10.3}s] {:<12} {}\n",
                e.time.as_secs_f64(),
                e.stage,
                what
            ));
        }
        out
    }
}

impl Tracker {
    /// Renders completed stage spans as an ASCII Gantt chart (the
    /// tracker's "workflow progress" display, and the executable stand-in
    /// for the paper's Figure 1 timelines).
    pub fn render_gantt(&self, width: usize) -> String {
        let spans = self.spans();
        let Some(total_end) = spans.iter().map(|s| s.finished).max() else {
            return String::new();
        };
        let total = total_end.as_secs_f64().max(1e-9);
        let mut out = String::new();
        for s in &spans {
            let a = ((s.started.as_secs_f64() / total) * width as f64) as usize;
            let b = (((s.finished.as_secs_f64() / total) * width as f64) as usize).max(a + 1);
            let a = a.min(width);
            let b = b.min(width);
            out.push_str(&format!(
                "{:<12} [{}{}{}] {:>8.2}s..{:>8.2}s
",
                s.stage,
                " ".repeat(a),
                "#".repeat(b - a),
                " ".repeat(width - b),
                s.started.as_secs_f64(),
                s.finished.as_secs_f64(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faaspipe_des::Sim;

    #[test]
    fn records_spans_and_renders() {
        let tracker = Tracker::new();
        let t2 = tracker.clone();
        let mut sim = Sim::new();
        sim.spawn("driver", move |ctx| {
            t2.stage_start(ctx, "sort");
            ctx.sleep(SimDuration::from_secs(3));
            t2.note(ctx, "sort", "autotuner picked 13 workers");
            ctx.sleep(SimDuration::from_secs(2));
            t2.stage_end(ctx, "sort");
            t2.stage_start(ctx, "encode");
            ctx.sleep(SimDuration::from_secs(1));
            t2.stage_end(ctx, "encode");
        });
        sim.run().expect("sim ok");
        let spans = tracker.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].stage, "sort");
        assert_eq!(spans[0].duration(), SimDuration::from_secs(5));
        assert_eq!(spans[1].stage, "encode");
        assert_eq!(spans[1].duration(), SimDuration::from_secs(1));
        let rendered = tracker.render();
        assert!(rendered.contains("sort"));
        assert!(rendered.contains("autotuner picked 13 workers"));
        assert!(rendered.contains("finished"));
        assert_eq!(tracker.events().len(), 5);
    }

    #[test]
    fn gantt_renders_proportional_bars() {
        let tracker = Tracker::new();
        let t2 = tracker.clone();
        let mut sim = Sim::new();
        sim.spawn("driver", move |ctx| {
            t2.stage_start(ctx, "sort");
            ctx.sleep(SimDuration::from_secs(8));
            t2.stage_end(ctx, "sort");
            t2.stage_start(ctx, "encode");
            ctx.sleep(SimDuration::from_secs(2));
            t2.stage_end(ctx, "encode");
        });
        sim.run().expect("sim ok");
        let gantt = tracker.render_gantt(40);
        let lines: Vec<&str> = gantt.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("sort"));
        // Sort occupies ~80% of the width, encode ~20%.
        let sort_hashes = lines[0].matches('#').count();
        let enc_hashes = lines[1].matches('#').count();
        assert!(
            sort_hashes > enc_hashes * 3,
            "{} vs {}",
            sort_hashes,
            enc_hashes
        );
        // Empty tracker renders empty.
        assert_eq!(Tracker::new().render_gantt(40), "");
    }

    #[test]
    fn unfinished_stage_has_no_span() {
        let tracker = Tracker::new();
        let t2 = tracker.clone();
        let mut sim = Sim::new();
        sim.spawn("driver", move |ctx| {
            t2.stage_start(ctx, "sort");
        });
        sim.run().expect("sim ok");
        assert!(tracker.spans().is_empty());
    }

    #[test]
    fn stage_spans_land_in_a_shared_sink() {
        let sink = TraceSink::recording();
        let run = sink.span_start(
            Category::Run,
            "run",
            "driver",
            "driver",
            SpanId::NONE,
            SimTime::ZERO,
        );
        let tracker = Tracker::with_sink(sink.clone(), run);
        let t2 = tracker.clone();
        let mut sim = Sim::new();
        sim.spawn("driver", move |ctx| {
            t2.stage_start(ctx, "sort");
            ctx.sleep(SimDuration::from_secs(1));
            t2.stage_end(ctx, "sort");
        });
        sim.run().expect("sim ok");
        let data = sink.snapshot();
        let stage = data
            .spans
            .iter()
            .find(|s| s.category == Category::Stage)
            .expect("stage span recorded");
        assert_eq!(stage.parent, Some(run));
        assert_eq!(tracker.spans().len(), 1);
    }
}
