//! The job tracker: live per-stage progress and notes.
//!
//! Stands in for the paper's "IPython interface for job tracking in real
//! time, which displays the workflow progress and breaks the cost down at
//! each stage" (§2.4) — here an event log with text rendering; the cost
//! breakdown itself comes from [`crate::pricing::CostReport`].

use parking_lot::Mutex;
use std::sync::Arc;

use faaspipe_des::{Ctx, SimDuration, SimTime};

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrackKind {
    /// A stage began executing.
    StageStart,
    /// A stage finished.
    StageEnd,
    /// Free-form progress note (e.g. "autotuner picked 13 workers").
    Note(String),
}

/// One tracker event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackEvent {
    /// Virtual time of the event.
    pub time: SimTime,
    /// Stage the event belongs to.
    pub stage: String,
    /// Event payload.
    pub kind: TrackKind,
}

/// Completed span of one stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSpan {
    /// Stage name.
    pub stage: String,
    /// Start time.
    pub started: SimTime,
    /// End time.
    pub finished: SimTime,
}

impl StageSpan {
    /// The stage's duration.
    pub fn duration(&self) -> SimDuration {
        self.finished.saturating_duration_since(self.started)
    }
}

/// Shared, cheaply clonable job tracker.
#[derive(Debug, Clone, Default)]
pub struct Tracker {
    events: Arc<Mutex<Vec<TrackEvent>>>,
}

impl Tracker {
    /// Creates an empty tracker.
    pub fn new() -> Tracker {
        Tracker::default()
    }

    /// Records a stage start at the current virtual time.
    pub fn stage_start(&self, ctx: &Ctx, stage: &str) {
        self.push(ctx.now(), stage, TrackKind::StageStart);
    }

    /// Records a stage end at the current virtual time.
    pub fn stage_end(&self, ctx: &Ctx, stage: &str) {
        self.push(ctx.now(), stage, TrackKind::StageEnd);
    }

    /// Records a free-form note.
    pub fn note(&self, ctx: &Ctx, stage: &str, message: impl Into<String>) {
        self.push(ctx.now(), stage, TrackKind::Note(message.into()));
    }

    fn push(&self, time: SimTime, stage: &str, kind: TrackKind) {
        self.events.lock().push(TrackEvent {
            time,
            stage: stage.to_string(),
            kind,
        });
    }

    /// All events so far, in order.
    pub fn events(&self) -> Vec<TrackEvent> {
        self.events.lock().clone()
    }

    /// Completed stage spans, in start order.
    pub fn spans(&self) -> Vec<StageSpan> {
        let events = self.events.lock();
        let mut spans = Vec::new();
        for e in events.iter() {
            if matches!(e.kind, TrackKind::StageStart) {
                let end = events.iter().find(|e2| {
                    e2.stage == e.stage && matches!(e2.kind, TrackKind::StageEnd)
                });
                if let Some(end) = end {
                    spans.push(StageSpan {
                        stage: e.stage.clone(),
                        started: e.time,
                        finished: end.time,
                    });
                }
            }
        }
        spans
    }

    /// Renders the progress log as text (the tracker display).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.events.lock().iter() {
            let what = match &e.kind {
                TrackKind::StageStart => "started".to_string(),
                TrackKind::StageEnd => "finished".to_string(),
                TrackKind::Note(msg) => msg.clone(),
            };
            out.push_str(&format!(
                "[{:>10.3}s] {:<12} {}\n",
                e.time.as_secs_f64(),
                e.stage,
                what
            ));
        }
        out
    }
}

impl Tracker {
    /// Renders completed stage spans as an ASCII Gantt chart (the
    /// tracker's "workflow progress" display, and the executable stand-in
    /// for the paper's Figure 1 timelines).
    pub fn render_gantt(&self, width: usize) -> String {
        let spans = self.spans();
        let Some(total_end) = spans.iter().map(|s| s.finished).max() else {
            return String::new();
        };
        let total = total_end.as_secs_f64().max(1e-9);
        let mut out = String::new();
        for s in &spans {
            let a = ((s.started.as_secs_f64() / total) * width as f64) as usize;
            let b = (((s.finished.as_secs_f64() / total) * width as f64) as usize).max(a + 1);
            let a = a.min(width);
            let b = b.min(width);
            out.push_str(&format!(
                "{:<12} [{}{}{}] {:>8.2}s..{:>8.2}s
",
                s.stage,
                " ".repeat(a),
                "#".repeat(b - a),
                " ".repeat(width - b),
                s.started.as_secs_f64(),
                s.finished.as_secs_f64(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faaspipe_des::Sim;

    #[test]
    fn records_spans_and_renders() {
        let tracker = Tracker::new();
        let t2 = tracker.clone();
        let mut sim = Sim::new();
        sim.spawn("driver", move |ctx| {
            t2.stage_start(ctx, "sort");
            ctx.sleep(SimDuration::from_secs(3));
            t2.note(ctx, "sort", "autotuner picked 13 workers");
            ctx.sleep(SimDuration::from_secs(2));
            t2.stage_end(ctx, "sort");
            t2.stage_start(ctx, "encode");
            ctx.sleep(SimDuration::from_secs(1));
            t2.stage_end(ctx, "encode");
        });
        sim.run().expect("sim ok");
        let spans = tracker.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].stage, "sort");
        assert_eq!(spans[0].duration(), SimDuration::from_secs(5));
        assert_eq!(spans[1].stage, "encode");
        assert_eq!(spans[1].duration(), SimDuration::from_secs(1));
        let rendered = tracker.render();
        assert!(rendered.contains("sort"));
        assert!(rendered.contains("autotuner picked 13 workers"));
        assert!(rendered.contains("finished"));
        assert_eq!(tracker.events().len(), 5);
    }

    #[test]
    fn gantt_renders_proportional_bars() {
        let tracker = Tracker::new();
        let t2 = tracker.clone();
        let mut sim = Sim::new();
        sim.spawn("driver", move |ctx| {
            t2.stage_start(ctx, "sort");
            ctx.sleep(SimDuration::from_secs(8));
            t2.stage_end(ctx, "sort");
            t2.stage_start(ctx, "encode");
            ctx.sleep(SimDuration::from_secs(2));
            t2.stage_end(ctx, "encode");
        });
        sim.run().expect("sim ok");
        let gantt = tracker.render_gantt(40);
        let lines: Vec<&str> = gantt.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("sort"));
        // Sort occupies ~80% of the width, encode ~20%.
        let sort_hashes = lines[0].matches('#').count();
        let enc_hashes = lines[1].matches('#').count();
        assert!(sort_hashes > enc_hashes * 3, "{} vs {}", sort_hashes, enc_hashes);
        // Empty tracker renders empty.
        assert_eq!(Tracker::new().render_gantt(40), "");
    }

    #[test]
    fn unfinished_stage_has_no_span() {
        let tracker = Tracker::new();
        let t2 = tracker.clone();
        let mut sim = Sim::new();
        sim.spawn("driver", move |ctx| {
            t2.stage_start(ctx, "sort");
        });
        sim.run().expect("sim ok");
        assert!(tracker.spans().is_empty());
    }
}
