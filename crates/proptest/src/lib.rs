//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses:
//! strategies (ranges, tuples, `any`, `collection::vec`, `prop_map`,
//! `prop_oneof!`, `prop_compose!`), the `proptest!` test macro, and the
//! `prop_assert*` macros. Cases are generated deterministically (the RNG
//! seed mixes a fixed constant with the test name), and there is **no
//! shrinking** — a failing case panics with the generated inputs'
//! assertion message instead of a minimised counterexample.

pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// A generator of values of type `Value`.
    ///
    /// Unlike real proptest there is no value tree: `generate` draws a
    /// single concrete value, and failures are reported un-shrunk.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                func: f,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        func: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut SmallRng) -> O {
            (self.func)(self.source.generate(rng))
        }
    }

    /// Uniform choice between several strategies of the same value type;
    /// backs the `prop_oneof!` macro.
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Builds a union over `arms` (must be non-empty).
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut SmallRng) -> V {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),* $(,)?) => {$(
            impl Strategy for ::std::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut SmallRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut SmallRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut SmallRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "whole domain" strategy, used by [`any`].
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($ty:ty),* $(,)?) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut SmallRng) -> $ty {
                    rng.gen()
                }
            }
        )*};
    }

    impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy over the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Length bounds for [`vec()`], half-open `[lo, hi)`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            let (lo, hi) = r.into_inner();
            SizeRange { lo, hi: hi + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    use super::strategy::Strategy;
    use super::{ProptestConfig, TestCaseError};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn fnv1a(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Drives one property test: generates `config.cases` inputs from
    /// `strat` and panics on the first case whose body returns `Err`.
    pub fn run<S, F>(name: &str, config: &ProptestConfig, strat: &S, mut body: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let mut rng = SmallRng::seed_from_u64(0xFAA5_7E57_0000_0001 ^ fnv1a(name));
        for case in 0..config.cases {
            let value = strat.generate(&mut rng);
            if let Err(err) = body(value) {
                panic!(
                    "property `{}` failed on case {}/{}: {}",
                    name,
                    case + 1,
                    config.cases,
                    err
                );
            }
        }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was falsified.
    Fail(String),
    /// The input was rejected (treated the same as failure here).
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{}", m),
            TestCaseError::Reject(m) => write!(f, "rejected: {}", m),
        }
    }
}

/// Per-test configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Real proptest defaults to 256; 64 keeps debug-profile suite
        // runtime reasonable for the heavier round-trip properties.
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// item becomes a regular test whose body runs once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strat = ($($strat,)*);
            $crate::test_runner::run(
                stringify!($name),
                &config,
                &strat,
                |($($arg,)*)| -> ::std::result::Result<(), $crate::TestCaseError> {
                    { $body }
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_tests!(@cfg ($cfg) $($rest)*);
    };
}

/// Defines a named function returning a composed strategy.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($param:tt)*)
        ($($arg:ident in $strat:expr),* $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($param)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)*),
                move |($($arg,)*)| $body,
            )
        }
    };
}

/// Uniform choice between strategy arms producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>> =
            vec![$(::std::boxed::Box::new($arm)),+];
        $crate::strategy::Union::new(arms)
    }};
}

/// Like `assert!` but fails the current proptest case instead of
/// panicking directly (must be used inside `proptest!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Like `assert_eq!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                        l, r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                        l, r, format!($($fmt)+)
                    )));
                }
            }
        }
    };
}

/// Like `assert_ne!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `(left != right)`\n  both: `{:?}`",
                        l
                    )));
                }
            }
        }
    };
}

/// Convenience re-exports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
        ProptestConfig, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds.
        #[test]
        fn range_bounds_hold(x in 3u64..17, y in 0u8..=4) {
            prop_assert!((3..17).contains(&x), "x = {}", x);
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_lengths_hold(v in vec(0u32..5, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            if v.is_empty() {
                return Ok(());
            }
            prop_assert!(v.iter().all(|&e| e < 5));
        }
    }

    proptest! {
        #[test]
        fn maps_and_tuples(pair in (1u32..10, 0i64..3).prop_map(|(a, b)| (a as i64, b))) {
            prop_assert!(pair.0 >= 1 && pair.0 < 10);
            prop_assert_eq!(pair.1, pair.1);
        }

        #[test]
        fn oneof_covers_all_arms(v in vec(prop_oneof![0u8..1, 10u8..11, 20u8..21], 64..65)) {
            prop_assert!(v.iter().all(|&e| e == 0 || e == 10 || e == 20));
            prop_assert!(v.contains(&0) && v.contains(&10) && v.contains(&20));
        }
    }

    prop_compose! {
        fn arb_point()(x in 0i64..100, y in 0i64..100) -> (i64, i64) {
            (x, y)
        }
    }

    proptest! {
        #[test]
        fn composed_strategy_works(p in arb_point()) {
            prop_assert!(p.0 < 100 && p.1 < 100);
        }
    }
}
