//! VM provisioning, execution helpers, and billing records.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use faaspipe_des::{run_blocking, Ctx, LinkId, SimDuration, SimTime};
use faaspipe_trace::{Category, SpanId, TraceSink};

use crate::profile::VmProfile;

/// Billing span of one VM.
#[derive(Debug, Clone, PartialEq)]
pub struct VmRecord {
    /// Instance id within the fleet.
    pub id: u64,
    /// Profile provisioned.
    pub profile: VmProfile,
    /// Attribution scope of the provisioning handle (a tenant name in a
    /// cluster run); `""` for the unscoped fleet.
    pub scope: String,
    /// When provisioning was requested (billing starts here).
    pub requested: SimTime,
    /// When the instance became usable.
    pub ready: SimTime,
    /// When the instance was released; `None` while still running.
    pub released: Option<SimTime>,
}

impl VmRecord {
    /// Billed wall-clock (request → release). Unreleased VMs bill to
    /// `upto`.
    pub fn billed_duration(&self, upto: SimTime) -> SimDuration {
        self.released
            .unwrap_or(upto)
            .saturating_duration_since(self.requested)
    }
}

/// A provisioned, usable VM.
#[derive(Debug)]
pub struct VmInstance {
    /// Instance id within the fleet.
    pub id: u64,
    /// Profile of this instance.
    pub profile: VmProfile,
    /// The VM's single NIC link; pass it to
    /// `ObjectStore::connect_via` so store traffic contends for it.
    pub nic: LinkId,
    trace: TraceSink,
    span: SpanId,
}

impl VmInstance {
    /// Charges single-threaded compute time.
    pub fn compute(&self, ctx: &Ctx, work: SimDuration) {
        run_blocking(self.compute_async(ctx, work));
    }

    /// Async form of [`VmInstance::compute`] for stackless processes.
    pub async fn compute_async(&self, ctx: &Ctx, work: SimDuration) {
        let span = self.compute_span(ctx, 1);
        ctx.compute_async(work).await;
        self.trace.span_end(span, ctx.now());
    }

    /// Charges `work` of single-vCPU compute parallelised across
    /// `threads` threads, with the profile's parallel efficiency.
    pub fn compute_parallel(&self, ctx: &Ctx, work: SimDuration, threads: u32) {
        run_blocking(self.compute_parallel_async(ctx, work, threads));
    }

    /// Async form of [`VmInstance::compute_parallel`].
    pub async fn compute_parallel_async(&self, ctx: &Ctx, work: SimDuration, threads: u32) {
        let span = self.compute_span(ctx, threads);
        ctx.compute_async(work.mul_f64(1.0 / self.profile.speedup(threads)))
            .await;
        self.trace.span_end(span, ctx.now());
    }

    /// Charges compute time for a CPU-heavy host kernel: the virtual
    /// charge is identical to [`VmInstance::compute_async`], while the
    /// real `job` runs on the simulator's offload pool.
    pub async fn compute_offload<R, J>(&self, ctx: &Ctx, work: SimDuration, job: J) -> R
    where
        R: Send + 'static,
        J: FnOnce() -> R + Send + 'static,
    {
        let span = self.compute_span(ctx, 1);
        let out = ctx.offload(work, job).await;
        self.trace.span_end(span, ctx.now());
        out
    }

    /// Parallel-speedup variant of [`VmInstance::compute_offload`]: the
    /// virtual charge is identical to
    /// [`VmInstance::compute_parallel_async`], while the real `job` runs
    /// on the simulator's offload pool.
    pub async fn compute_parallel_offload<R, J>(
        &self,
        ctx: &Ctx,
        work: SimDuration,
        threads: u32,
        job: J,
    ) -> R
    where
        R: Send + 'static,
        J: FnOnce() -> R + Send + 'static,
    {
        let span = self.compute_span(ctx, threads);
        let out = ctx
            .offload(work.mul_f64(1.0 / self.profile.speedup(threads)), job)
            .await;
        self.trace.span_end(span, ctx.now());
        out
    }

    fn compute_span(&self, ctx: &Ctx, threads: u32) -> SpanId {
        if !self.trace.is_enabled() {
            return SpanId::NONE;
        }
        let span = self.trace.span_start(
            Category::Compute,
            "compute",
            "vm",
            &format!("vm-{}", self.id),
            self.span,
            ctx.now(),
        );
        self.trace.attr(span, "threads", threads);
        span
    }
}

/// A fleet of VMs: the provisioning front-end plus billing records.
///
/// Cheap to clone (`Arc` inside); see the [crate docs](crate) for an
/// example.
#[derive(Debug, Clone, Default)]
pub struct VmFleet {
    inner: Arc<FleetInner>,
    /// Attribution scope stamped on this handle's provisions.
    scope: String,
}

#[derive(Debug, Default)]
struct FleetInner {
    next_id: AtomicU64,
    records: Mutex<Vec<VmRecord>>,
    trace: Mutex<TraceSink>,
    /// Open [`Category::VmTask`] spans by instance id.
    open: Mutex<BTreeMap<u64, SpanId>>,
    active: AtomicU64,
}

impl VmFleet {
    /// Creates an empty fleet.
    pub fn new() -> VmFleet {
        VmFleet::default()
    }

    /// A handle onto the *same* fleet (shared ids, records, trace sink)
    /// whose provisions are attributed to `scope` — how a cluster bills
    /// one shared fleet's VMs to the tenants that asked for them.
    pub fn scoped(&self, scope: impl Into<String>) -> VmFleet {
        VmFleet {
            inner: Arc::clone(&self.inner),
            scope: scope.into(),
        }
    }

    /// This handle's attribution scope (`""` for the unscoped fleet).
    pub fn scope(&self) -> &str {
        &self.scope
    }

    /// Routes per-VM spans and the active-instance gauge to `sink`. The
    /// default sink is disabled.
    pub fn set_trace_sink(&self, sink: TraceSink) {
        *self.inner.trace.lock() = sink;
    }

    /// Provisions an instance, blocking the calling process for the
    /// profile's provisioning delay. Billing starts at the request.
    pub fn provision(&self, ctx: &Ctx, profile: VmProfile) -> VmInstance {
        run_blocking(self.provision_inner(ctx, profile, true))
    }

    /// Async form of [`VmFleet::provision`] for stackless processes.
    pub async fn provision_async(&self, ctx: &Ctx, profile: VmProfile) -> VmInstance {
        self.provision_inner(ctx, profile, true).await
    }

    /// Like [`VmFleet::provision`] — same delay, billing, and `VmTask`
    /// span — but records no [`Category::ColdStart`] leaf, so the boot
    /// does not claim the critical path. For capacity warmed in the
    /// background while other work runs: the caller attributes the
    /// *residual* wait it actually suffers at the point it blocks.
    pub fn provision_prewarmed(&self, ctx: &Ctx, profile: VmProfile) -> VmInstance {
        run_blocking(self.provision_inner(ctx, profile, false))
    }

    /// Async form of [`VmFleet::provision_prewarmed`].
    pub async fn provision_prewarmed_async(&self, ctx: &Ctx, profile: VmProfile) -> VmInstance {
        self.provision_inner(ctx, profile, false).await
    }

    async fn provision_inner(
        &self,
        ctx: &Ctx,
        profile: VmProfile,
        on_critical_path: bool,
    ) -> VmInstance {
        let requested = ctx.now();
        let trace = self.inner.trace.lock().clone();
        let parent = trace.current(ctx.pid());
        ctx.sleep_async(profile.provisioning).await;
        let nic = ctx.link_create_async(profile.nic_bw).await;
        let id = self.inner.next_id.fetch_add(1, Ordering::SeqCst);
        let span = if trace.is_enabled() {
            let ready = ctx.now();
            let lane = format!("vm-{}", id);
            let task = trace.span_start(
                Category::VmTask,
                &profile.name,
                "vm",
                &lane,
                parent,
                requested,
            );
            trace.attr(task, "vcpus", profile.vcpus);
            if on_critical_path {
                // The provisioning delay is the VM's cold start on the
                // critical path.
                let boot = trace.span_start(
                    Category::ColdStart,
                    "vm-provision",
                    "vm",
                    &lane,
                    task,
                    requested,
                );
                trace.span_end(boot, ready);
            }
            self.inner.open.lock().insert(id, task);
            let active = self.inner.active.fetch_add(1, Ordering::SeqCst) + 1;
            trace.gauge("vm.active", ready, active as f64);
            task
        } else {
            SpanId::NONE
        };
        self.inner.records.lock().push(VmRecord {
            id,
            profile: profile.clone(),
            scope: self.scope.clone(),
            requested,
            ready: ctx.now(),
            released: None,
        });
        VmInstance {
            id,
            profile,
            nic,
            trace,
            span,
        }
    }

    /// Releases an instance, ending its billing span.
    ///
    /// # Panics
    /// Panics if the instance was already released (double release is a
    /// billing bug).
    pub fn release(&self, ctx: &Ctx, vm: VmInstance) {
        let mut records = self.inner.records.lock();
        let rec = records
            .iter_mut()
            .find(|r| r.id == vm.id)
            .expect("released VM must have a record");
        assert!(rec.released.is_none(), "VM {} released twice", vm.id);
        rec.released = Some(ctx.now());
        if let Some(task) = self.inner.open.lock().remove(&vm.id) {
            vm.trace.span_end(task, ctx.now());
            let active = self.inner.active.fetch_sub(1, Ordering::SeqCst) - 1;
            vm.trace.gauge("vm.active", ctx.now(), active as f64);
        }
    }

    /// Snapshot of all VM billing records.
    pub fn records(&self) -> Vec<VmRecord> {
        self.inner.records.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faaspipe_des::Sim;

    #[test]
    fn provision_charges_boot_time_and_bills_from_request() {
        let mut sim = Sim::new();
        let fleet = VmFleet::new();
        let f = fleet.clone();
        sim.spawn("driver", move |ctx| {
            ctx.sleep(SimDuration::from_secs(10));
            let vm = f.provision(ctx, VmProfile::bx2_8x32());
            assert_eq!(ctx.now().as_secs_f64(), 10.0 + 44.0);
            ctx.sleep(SimDuration::from_secs(5));
            f.release(ctx, vm);
        });
        sim.run().expect("run");
        let rec = &fleet.records()[0];
        assert_eq!(rec.requested.as_secs_f64(), 10.0);
        assert_eq!(rec.ready.as_secs_f64(), 54.0);
        assert_eq!(
            rec.billed_duration(SimTime::MAX),
            SimDuration::from_secs(49)
        );
    }

    #[test]
    fn unreleased_vm_bills_to_checkpoint() {
        let mut sim = Sim::new();
        let fleet = VmFleet::new();
        let f = fleet.clone();
        sim.spawn("driver", move |ctx| {
            let _vm = f.provision(ctx, VmProfile::bx2_4x16());
            ctx.sleep(SimDuration::from_secs(8));
        });
        sim.run().expect("run");
        let rec = &fleet.records()[0];
        assert!(rec.released.is_none());
        let at = SimTime::ZERO + SimDuration::from_secs(60);
        assert_eq!(rec.billed_duration(at), SimDuration::from_secs(60));
    }

    #[test]
    fn compute_parallel_uses_profile_speedup() {
        let mut sim = Sim::new();
        let fleet = VmFleet::new();
        let f = fleet.clone();
        sim.spawn("driver", move |ctx| {
            let vm = f.provision(ctx, VmProfile::bx2_8x32());
            let before = ctx.now();
            vm.compute_parallel(ctx, SimDuration::from_secs(656), 8);
            let took = ctx.now().saturating_duration_since(before).as_secs_f64();
            // 656 s / (8 * 0.82) = 100 s.
            assert!((took - 100.0).abs() < 1e-6);
            f.release(ctx, vm);
        });
        sim.run().expect("run");
    }

    #[test]
    fn traced_vm_records_task_and_provision_spans() {
        let mut sim = Sim::new();
        let fleet = VmFleet::new();
        let sink = TraceSink::recording();
        fleet.set_trace_sink(sink.clone());
        let f = fleet.clone();
        sim.spawn("driver", move |ctx| {
            let vm = f.provision(ctx, VmProfile::bx2_8x32());
            vm.compute(ctx, SimDuration::from_secs(3));
            f.release(ctx, vm);
        });
        sim.run().expect("run");
        let data = sink.snapshot();
        let task = data
            .spans
            .iter()
            .find(|s| s.category == Category::VmTask)
            .expect("vm-task span");
        assert_eq!(task.lane, "vm-0");
        assert!(task.end.is_some());
        let boot = data
            .spans
            .iter()
            .find(|s| s.category == Category::ColdStart)
            .expect("provision span");
        assert_eq!(boot.parent, Some(task.id));
        assert_eq!(boot.duration().unwrap(), SimDuration::from_secs(44));
        assert!(data.spans.iter().any(|s| s.category == Category::Compute));
        assert_eq!(sink.counter_value("vm.active"), 0.0);
    }

    #[test]
    fn prewarmed_provision_bills_identically_without_a_cold_start_span() {
        let mut sim = Sim::new();
        let fleet = VmFleet::new();
        let sink = TraceSink::recording();
        fleet.set_trace_sink(sink.clone());
        let f = fleet.clone();
        sim.spawn("driver", move |ctx| {
            let vm = f.provision_prewarmed(ctx, VmProfile::bx2_8x32());
            assert_eq!(ctx.now().as_secs_f64(), 44.0, "same delay as provision");
            f.release(ctx, vm);
        });
        sim.run().expect("run");
        let rec = &fleet.records()[0];
        assert_eq!(rec.requested.as_secs_f64(), 0.0);
        assert_eq!(rec.ready.as_secs_f64(), 44.0, "billing is unchanged");
        let data = sink.snapshot();
        assert!(
            data.spans.iter().any(|s| s.category == Category::VmTask),
            "the task span is still recorded"
        );
        assert!(
            !data.spans.iter().any(|s| s.category == Category::ColdStart),
            "a background boot must not claim the critical path"
        );
    }

    #[test]
    fn scoped_handles_share_the_fleet_but_stamp_attribution() {
        let mut sim = Sim::new();
        let fleet = VmFleet::new();
        let t0 = fleet.scoped("t0");
        let t1 = fleet.scoped("t1");
        sim.spawn("driver", move |ctx| {
            let a = t0.provision(ctx, VmProfile::bx2_4x16());
            let b = t1.provision(ctx, VmProfile::bx2_4x16());
            assert_ne!(a.id, b.id, "ids come from the shared fleet");
            t0.release(ctx, a);
            t1.release(ctx, b);
        });
        sim.run().expect("run");
        let recs = fleet.records();
        assert_eq!(recs.len(), 2, "one shared record book");
        assert_eq!(recs[0].scope, "t0");
        assert_eq!(recs[1].scope, "t1");
        assert_eq!(fleet.scope(), "");
    }

    #[test]
    fn fleet_ids_are_unique() {
        let mut sim = Sim::new();
        let fleet = VmFleet::new();
        let f = fleet.clone();
        sim.spawn("driver", move |ctx| {
            let a = f.provision(ctx, VmProfile::bx2_4x16());
            let b = f.provision(ctx, VmProfile::bx2_4x16());
            assert_ne!(a.id, b.id);
            f.release(ctx, a);
            f.release(ctx, b);
        });
        sim.run().expect("run");
        assert_eq!(fleet.records().len(), 2);
    }
}
