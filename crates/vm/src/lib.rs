//! # faaspipe-vm — simulated virtual machine instances
//!
//! Models IBM Virtual Server-style VMs for the paper's *hybrid* pipeline:
//! Lithops provisions a large VM, runs the shuffle-heavy stage inside it,
//! and tears it down. The model captures exactly what the hybrid pipeline
//! pays for:
//!
//! * **provisioning delay** — tens of seconds before the instance can run
//!   anything (the dominant latency cost in the paper's Table 1);
//! * **multi-core compute** — work parallelised across the profile's
//!   vCPUs with a configurable parallel efficiency;
//! * **a single NIC** — all object-store traffic of the VM shares one
//!   link (vs the aggregated NICs of many functions);
//! * **per-second billing** from provisioning request to release.
//!
//! ## Example
//!
//! ```
//! use faaspipe_des::{Sim, SimDuration};
//! use faaspipe_vm::{VmFleet, VmProfile};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sim = Sim::new();
//! let fleet = VmFleet::new();
//! let f = fleet.clone();
//! sim.spawn("driver", move |ctx| {
//!     let vm = f.provision(ctx, VmProfile::bx2_8x32());
//!     vm.compute_parallel(ctx, SimDuration::from_secs(80), 8);
//!     f.release(ctx, vm);
//! });
//! sim.run()?;
//! assert_eq!(fleet.records().len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod fleet;
pub mod profile;

pub use fleet::{VmFleet, VmInstance, VmRecord};
pub use profile::VmProfile;
