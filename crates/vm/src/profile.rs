//! VM instance profiles (a small catalog of IBM `bx2` balanced shapes).

use faaspipe_des::{Bandwidth, SimDuration};

/// Shape and performance model of a VM instance type.
#[derive(Debug, Clone, PartialEq)]
pub struct VmProfile {
    /// Provider profile name, e.g. `bx2-8x32`.
    pub name: String,
    /// Number of vCPUs.
    pub vcpus: u32,
    /// Memory in GiB.
    pub memory_gib: u32,
    /// NIC bandwidth (IBM bx2 profiles get 2 Gbps per vCPU, capped).
    pub nic_bw: Bandwidth,
    /// Time from provisioning request to a usable instance. Covers
    /// scheduling, boot, and the Lithops runtime bootstrap the paper's
    /// hybrid pipeline pays before the sort can start.
    pub provisioning: SimDuration,
    /// Parallel efficiency of multi-threaded work on this shape in
    /// `(0, 1]`: 8 threads deliver `8 * efficiency` times one thread.
    pub parallel_efficiency: f64,
}

impl VmProfile {
    /// The paper's VM: IBM `bx2-8x32` (8 vCPU, 32 GiB).
    pub fn bx2_8x32() -> VmProfile {
        VmProfile {
            name: "bx2-8x32".to_string(),
            vcpus: 8,
            memory_gib: 32,
            nic_bw: Bandwidth::gbit_per_sec(16.0),
            provisioning: SimDuration::from_secs(44),
            parallel_efficiency: 0.82,
        }
    }

    /// Smaller sibling: `bx2-4x16`.
    pub fn bx2_4x16() -> VmProfile {
        VmProfile {
            name: "bx2-4x16".to_string(),
            vcpus: 4,
            memory_gib: 16,
            nic_bw: Bandwidth::gbit_per_sec(8.0),
            provisioning: SimDuration::from_secs(50),
            parallel_efficiency: 0.85,
        }
    }

    /// Larger sibling: `bx2-16x64`.
    pub fn bx2_16x64() -> VmProfile {
        VmProfile {
            name: "bx2-16x64".to_string(),
            vcpus: 16,
            memory_gib: 64,
            nic_bw: Bandwidth::gbit_per_sec(32.0),
            provisioning: SimDuration::from_secs(55),
            parallel_efficiency: 0.78,
        }
    }

    /// Effective speed-up of running work across `threads` threads.
    pub fn speedup(&self, threads: u32) -> f64 {
        let t = threads.min(self.vcpus) as f64;
        if t <= 1.0 {
            1.0
        } else {
            t * self.parallel_efficiency
        }
    }

    /// Returns the profile with a different provisioning delay (used by
    /// experiments probing pre-provisioned VMs).
    pub fn with_provisioning(mut self, d: SimDuration) -> Self {
        self.provisioning = d;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profile_shape() {
        let p = VmProfile::bx2_8x32();
        assert_eq!(p.vcpus, 8);
        assert_eq!(p.memory_gib, 32);
        assert_eq!(p.name, "bx2-8x32");
    }

    #[test]
    fn speedup_caps_at_vcpus() {
        let p = VmProfile::bx2_8x32();
        assert_eq!(p.speedup(1), 1.0);
        assert!((p.speedup(8) - 8.0 * 0.82).abs() < 1e-12);
        assert_eq!(p.speedup(64), p.speedup(8), "more threads than vcpus");
    }

    #[test]
    fn catalog_profiles_are_ordered() {
        let small = VmProfile::bx2_4x16();
        let big = VmProfile::bx2_16x64();
        assert!(small.vcpus < big.vcpus);
        assert!(small.nic_bw.as_bytes_per_sec() < big.nic_bw.as_bytes_per_sec());
    }
}
