//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro/struct surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `Bencher::iter`, `Throughput`, `black_box` — backed
//! by a simple wall-clock harness: each benchmark is warmed up, then
//! timed over `sample_size` batches, and the per-iteration mean, min and
//! max are printed. No statistics, plots, or saved baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units processed per iteration, used to report a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, recording one sample of `iters` consecutive calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.samples.push(start.elapsed());
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{} ns", ns)
    } else if ns < 1_000_000 {
        format!("{:.2} \u{00b5}s", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn fmt_rate(units: u64, per: Duration, label: &str) -> String {
    let secs = per.as_secs_f64();
    if secs <= 0.0 {
        return String::new();
    }
    let rate = units as f64 / secs;
    if label == "B" {
        if rate >= 1e9 {
            format!(" ({:.2} GiB/s)", rate / (1u64 << 30) as f64)
        } else {
            format!(" ({:.2} MiB/s)", rate / (1u64 << 20) as f64)
        }
    } else if rate >= 1e6 {
        format!(" ({:.2} Melem/s)", rate / 1e6)
    } else {
        format!(" ({:.2} Kelem/s)", rate / 1e3)
    }
}

#[derive(Clone, Copy)]
struct GroupConfig {
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl Default for GroupConfig {
    fn default() -> GroupConfig {
        GroupConfig {
            sample_size: 20,
            throughput: None,
        }
    }
}

fn run_benchmark(full_id: &str, cfg: GroupConfig, f: &mut dyn FnMut(&mut Bencher)) {
    // One calibration pass: how many iterations fit in ~20 ms per sample?
    let mut cal = Bencher {
        iters: 1,
        samples: Vec::new(),
    };
    f(&mut cal);
    let per_iter = cal.samples.first().copied().unwrap_or(Duration::ZERO);
    let target = Duration::from_millis(20);
    let iters = if per_iter.is_zero() {
        1_000
    } else {
        (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000) as u64
    };

    let mut b = Bencher {
        iters,
        samples: Vec::new(),
    };
    for _ in 0..cfg.sample_size.max(1) {
        f(&mut b);
    }

    let per_sample: Vec<Duration> = b
        .samples
        .iter()
        .map(|d| Duration::from_nanos((d.as_nanos() / iters as u128) as u64))
        .collect();
    let total: Duration = per_sample.iter().sum();
    let mean = total / per_sample.len().max(1) as u32;
    let min = per_sample.iter().min().copied().unwrap_or(Duration::ZERO);
    let max = per_sample.iter().max().copied().unwrap_or(Duration::ZERO);

    let rate = match cfg.throughput {
        Some(Throughput::Bytes(n)) => fmt_rate(n, mean, "B"),
        Some(Throughput::Elements(n)) => fmt_rate(n, mean, "elem"),
        None => String::new(),
    };

    println!(
        "{:<44} time: [{} {} {}]{}",
        full_id,
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        rate
    );
}

/// Namespaced collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    cfg: GroupConfig,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n;
        self
    }

    /// Declares the units processed per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.cfg.throughput = Some(throughput);
        self
    }

    /// Runs one named benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.cfg, &mut f);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            cfg: GroupConfig::default(),
            _criterion: self,
        }
    }

    /// Runs one stand-alone named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_benchmark(id, GroupConfig::default(), &mut f);
        self
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` invoking the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_counts() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.throughput(Throughput::Bytes(1024));
            g.bench_function("count", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert!(runs > 0);
        c.bench_function("standalone", |b| b.iter(|| black_box(3 + 4)));
    }
}
