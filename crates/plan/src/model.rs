//! The analytical cost/latency model.
//!
//! [`ModelParams::estimate`] produces a closed-form per-phase makespan
//! and bill for one candidate (W, K, backend, shards) configuration of
//! the serverless sort (+ optional encode tail). The equations mirror
//! the simulator's mechanics phase by phase — see DESIGN.md "Planner"
//! for the derivation — so a *calibrated* parameter set predicts
//! simulated makespans closely enough to rank configurations
//! (E19 validates model error ≤ 15% across the E15/E16/E17 grid).
//!
//! All bandwidth parameters are in **wire bytes/sec** (the modelled
//! scale, after `size_scale`), all latencies in seconds, and the
//! compute rates are *effective* throughputs — the CPU share of the
//! container memory class is already folded in, which is exactly what a
//! trace-fitted rate measures.

use faaspipe_exchange::{DirectConfig, ExchangeKind, RelayConfig};
use faaspipe_faas::FaasConfig;
use faaspipe_shuffle::WorkModel;
use faaspipe_store::StoreConfig;

const MIB: f64 = 1024.0 * 1024.0;

/// Every parameter the model needs, fit by the calibrator
/// ([`mod@crate::calibrate`]) or derived from service configs
/// ([`ModelParams::from_configs`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelParams {
    /// Container cold-start latency (seconds). Paid by the first
    /// invocation wave of every distinct function name.
    pub cold_start_s: f64,
    /// Snapshot-restore start latency (seconds). Third start class
    /// reserved for the CRIU/Firecracker-style restore model (ROADMAP
    /// item 4); no current backend schedules it.
    pub snapshot_start_s: f64,
    /// Warm-container pickup latency (seconds).
    pub warm_start_s: f64,
    /// Driver orchestration overhead per execution phase (seconds).
    pub orchestration_s: f64,
    /// Object-store first-byte latency per request (seconds).
    pub store_latency_s: f64,
    /// Per-connection store bandwidth cap (wire bytes/sec). All of a
    /// function's windowed requests share one connection link.
    pub store_conn_bps: f64,
    /// Store aggregate backbone bandwidth (wire bytes/sec), shared
    /// W-ways under fair sharing.
    pub store_agg_bps: f64,
    /// Store request-rate throttle (requests/sec across all callers).
    pub store_ops_per_sec: f64,
    /// Function container NIC bandwidth (wire bytes/sec); caps each
    /// function's aggregate transfer rate regardless of window depth.
    pub fn_nic_bps: f64,
    /// Relay request latency per operation (seconds).
    pub relay_latency_s: f64,
    /// Relay VM NIC bandwidth (wire bytes/sec), per shard.
    pub relay_nic_bps: f64,
    /// Relay in-memory capacity (wire bytes), per shard; intermediates
    /// past it spill to local disk.
    pub relay_mem_bytes: f64,
    /// Relay local-disk bandwidth for spilled bytes (wire bytes/sec).
    pub relay_disk_bps: f64,
    /// Relay VM provisioning delay (seconds); blocks `prepare` unless
    /// the backend pre-warms, in which case only the un-hidden residual
    /// surfaces at the first map-phase request.
    pub relay_provision_s: f64,
    /// Direct-streaming rendezvous handshake per partition (seconds).
    pub direct_handshake_s: f64,
    /// Effective sample-parse throughput (wire bytes/sec).
    pub parse_bps: f64,
    /// Effective map-sort throughput (wire bytes/sec).
    pub sort_bps: f64,
    /// Effective map-partition throughput (wire bytes/sec).
    pub partition_bps: f64,
    /// Effective reduce-merge throughput (wire bytes/sec).
    pub merge_bps: f64,
    /// Effective METHCOMP-encode throughput (wire bytes/sec).
    pub encode_bps: f64,
    /// Encode output ratio: archive bytes per input wire byte (< 1 when
    /// compression wins).
    pub encode_output_ratio: f64,
}

faaspipe_json::json_object! {
    ModelParams {
        req cold_start_s,
        req snapshot_start_s,
        req warm_start_s,
        req orchestration_s,
        req store_latency_s,
        req store_conn_bps,
        req store_agg_bps,
        req store_ops_per_sec,
        req fn_nic_bps,
        req relay_latency_s,
        req relay_nic_bps,
        req relay_mem_bytes,
        req relay_disk_bps,
        req relay_provision_s,
        req direct_handshake_s,
        req parse_bps,
        req sort_bps,
        req partition_bps,
        req merge_bps,
        req encode_bps,
        req encode_output_ratio,
    }
}

/// What the pipeline moves and computes: the per-stage shape the model
/// multiplies the parameters against.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Total modelled (wire) input bytes of the sort stage.
    pub data_bytes: f64,
    /// Number of staged input objects.
    pub input_chunks: usize,
    /// Wire bytes one sample-phase range read fetches (the physical
    /// `sample_bytes` cap times the size scale, clamped to the chunk).
    pub sample_read_bytes: f64,
    /// Encode-stage gang size downstream of the sort (0 = no encode
    /// tail in the objective).
    pub encode_workers: usize,
}

faaspipe_json::json_object! {
    Workload {
        req data_bytes,
        req input_chunks,
        req sample_read_bytes,
        req encode_workers,
    }
}

/// One concrete configuration the model can estimate: worker count,
/// per-function I/O window, and exchange backend (shard count and
/// pre-warm ride inside [`ExchangeKind::ShardedRelay`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Sort worker count W (mappers = reducers).
    pub workers: usize,
    /// Per-function I/O window K.
    pub io_concurrency: usize,
    /// Exchange backend. Must be concrete (never [`ExchangeKind::Auto`]).
    pub exchange: ExchangeKind,
}

/// The model's prediction for one candidate: per-phase seconds, the
/// end-to-end makespan, and an itemized bill.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Driver setup before the sample phase: input LIST + blocking
    /// relay provisioning (cold relays only).
    pub prepare_s: f64,
    /// Sample phase (orchestration + starts + ranged reads + parse).
    pub sample_s: f64,
    /// Map phase (download/sort overlap + partition + exchange write).
    pub map_s: f64,
    /// Reduce phase (windowed gather + merge + run PUT).
    pub reduce_s: f64,
    /// Encode tail (0 when the workload has no encode stage).
    pub encode_s: f64,
    /// End-to-end predicted makespan (sum of the above).
    pub makespan_s: f64,
    /// Predicted bill in dollars (functions + store requests + VMs).
    pub cost_dollars: f64,
}

/// Unit prices for the bill estimate. Defaults mirror the pricing used
/// by the cost report (`PriceBook`): IBM Cloud Functions GB-seconds,
/// COS class A/B requests, and the `bx2-8x32` hourly rate.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanPrices {
    /// Dollars per function GB-second.
    pub fn_gb_second: f64,
    /// Function memory in GB (converts busy-seconds to GB-seconds).
    pub fn_memory_gb: f64,
    /// Dollars per 1 000 class-A (mutating) store requests.
    pub class_a_per_k: f64,
    /// Dollars per 1 000 class-B (read) store requests.
    pub class_b_per_k: f64,
    /// Dollars per relay-VM hour.
    pub vm_per_hour: f64,
}

impl Default for PlanPrices {
    fn default() -> PlanPrices {
        PlanPrices {
            fn_gb_second: 0.000017,
            fn_memory_gb: 2.0,
            class_a_per_k: 0.005,
            class_b_per_k: 0.0004,
            vm_per_hour: 0.34,
        }
    }
}

/// `ceil(n / k)` in f64 for latency-amortization terms.
fn windows(n: f64, k: f64) -> f64 {
    (n / k.max(1.0)).ceil()
}

/// How many gather windows the direct exchange spends convoyed before
/// partition-size skew spreads the reducers over distinct senders.
/// Fitted on the E17 direct sweep (W ∈ {8, 32}, K ∈ {1..16}): the
/// implied desync horizon ranges 1.4–4.5 windows; 3 keeps every cell
/// within ±11% of the simulator.
const DIRECT_CONVOY_WINDOWS: f64 = 3.0;

impl Default for ModelParams {
    /// Parameters derived from every service's default configuration —
    /// the right baseline when no deployment-specific configs are at
    /// hand (tests, benches, documentation examples).
    fn default() -> ModelParams {
        ModelParams::from_configs(
            &StoreConfig::default(),
            &FaasConfig::default(),
            &RelayConfig::default(),
            &DirectConfig::default(),
            &WorkModel::default(),
        )
    }
}

impl ModelParams {
    /// Derives a parameter set from the service configurations and work
    /// model — the executor's fallback when no trace-fitted
    /// [`Calibration`](crate::Calibration) was supplied. `work` must
    /// carry the run's size scale so the effective compute rates come
    /// out in wire bytes/sec.
    pub fn from_configs(
        store: &StoreConfig,
        faas: &FaasConfig,
        relay: &RelayConfig,
        direct: &DirectConfig,
        work: &WorkModel,
    ) -> ModelParams {
        let cpu = faas.cpu_share();
        // WorkModel rates are MiB of *physical* bytes per second and the
        // charge multiplies by size_scale; in wire bytes the scale
        // cancels, so effective rate = MiB/s × cpu share.
        let eff = |mibps: f64| mibps * MIB * cpu;
        ModelParams {
            cold_start_s: faas.cold_start.as_secs_f64(),
            snapshot_start_s: 0.25,
            warm_start_s: faas.warm_start.as_secs_f64(),
            orchestration_s: 8.0,
            store_latency_s: store.first_byte_latency.as_secs_f64(),
            store_conn_bps: store.per_connection_bw.as_bytes_per_sec(),
            store_agg_bps: store.aggregate_bw.as_bytes_per_sec(),
            store_ops_per_sec: store.ops_per_sec,
            fn_nic_bps: faas.nic_bw.as_bytes_per_sec(),
            relay_latency_s: relay.request_latency.as_secs_f64(),
            relay_nic_bps: relay.profile.nic_bw.as_bytes_per_sec(),
            relay_mem_bytes: relay.memory_capacity.as_u64() as f64,
            relay_disk_bps: relay.disk_bw.as_bytes_per_sec(),
            relay_provision_s: relay.profile.provisioning.as_secs_f64(),
            direct_handshake_s: direct.handshake.as_secs_f64(),
            parse_bps: eff(work.parse_mibps),
            sort_bps: eff(work.sort_mibps),
            partition_bps: eff(work.partition_mibps),
            merge_bps: eff(work.merge_mibps),
            encode_bps: eff(work.methcomp_encode_mibps),
            // METHCOMP archives measured on the synthetic dataset come
            // out near a third of the wire size; calibration replaces
            // this with the traced PUT/GET ratio.
            encode_output_ratio: 0.35,
        }
    }

    /// A function's aggregate store transfer rate with `w` active
    /// functions: its own connection and NIC links cap it (shared by its
    /// windowed flows, so independent of K), and the store backbone is
    /// shared W-ways.
    fn store_bw(&self, w: f64) -> f64 {
        self.store_conn_bps
            .min(self.fn_nic_bps)
            .min(self.store_agg_bps / w.max(1.0))
    }

    /// Relay transfer seconds for one exchange direction: every function
    /// moves `per_fn` bytes through its NIC while `total` bytes cross
    /// the `shards` relay NICs; spilled bytes additionally pay the
    /// relay's local disk.
    fn relay_transfer_s(&self, per_fn: f64, total: f64, shards: f64) -> f64 {
        let net = (per_fn / self.fn_nic_bps).max(total / (shards * self.relay_nic_bps));
        let spilled = (total - shards * self.relay_mem_bytes).max(0.0);
        net + spilled / (shards * self.relay_disk_bps)
    }

    /// The request-rate floor: `reqs` store operations cannot complete
    /// faster than the ops/s throttle admits them.
    fn ops_floor_s(&self, reqs: f64) -> f64 {
        reqs / self.store_ops_per_sec
    }

    /// Extra direct-gather seconds lost to the rendezvous convoy. Every
    /// reducer walks the senders in the same order, so the first gather
    /// windows put all `w` receiver flows on the same `min(k, w)` sender
    /// NICs: a convoyed window moves `k` partitions at `nic/w` per flow
    /// instead of streaming at full NIC rate, costing `(w - k)` extra
    /// partition-transfer times. Skew in the range-partitioned sizes
    /// decorrelates the flows after about [`DIRECT_CONVOY_WINDOWS`]
    /// windows, after which `d / nic` (already charged by the caller) is
    /// the right rate. Charging only the handshake here — the pre-fix
    /// behaviour — under-estimated K ≤ 2 direct runs by ~20–25%.
    fn direct_convoy_s(&self, d: f64, w: f64, k: f64) -> f64 {
        let part = d / w;
        DIRECT_CONVOY_WINDOWS * (w - k.min(w)).max(0.0) * part / self.fn_nic_bps
    }

    /// Download/compute overlap for a K-windowed phase: sequential when
    /// K = 1; pipelined otherwise, with one ~`1/(2K)` chunk of the
    /// shorter side left un-hidden (the pipeline fill).
    fn overlap(&self, io_s: f64, compute_s: f64, k: f64) -> f64 {
        if k <= 1.0 {
            io_s + compute_s
        } else {
            io_s.max(compute_s) + io_s.min(compute_s) / (2.0 * k)
        }
    }

    /// Predicts per-phase makespan and bill for `cand` on `wl`.
    ///
    /// # Panics
    /// Panics if `cand.exchange` is [`ExchangeKind::Auto`] — the planner
    /// only evaluates concrete backends.
    pub fn estimate(&self, wl: &Workload, cand: &Candidate) -> Estimate {
        assert!(
            cand.exchange != ExchangeKind::Auto,
            "the model estimates concrete backends only"
        );
        let w = cand.workers.max(1) as f64;
        let k = cand.io_concurrency.max(1) as f64;
        let chunks = wl.input_chunks.max(1) as f64;
        let d = wl.data_bytes / w; // per-function bytes
        let lat = self.store_latency_s;
        let bw = self.store_bw(w);
        let (relay_shards, relay_prewarm) = match cand.exchange {
            ExchangeKind::VmRelay => (1.0, false),
            ExchangeKind::ShardedRelay { shards, prewarm } => (shards.max(1) as f64, prewarm),
            _ => (0.0, false),
        };

        // ---- prepare: driver LIST, plus blocking relay provisioning. ----
        let mut prepare_s = lat;
        if relay_shards > 0.0 && !relay_prewarm {
            prepare_s += self.relay_provision_s;
        }

        // ---- sample: ranged reads + reservoir parse. ----
        // Only min(W, chunks) functions have assigned inputs.
        let active = w.min(chunks);
        let reads_per_fn = (chunks / w).ceil();
        let sample_io = windows(reads_per_fn, k) * lat
            + reads_per_fn * wl.sample_read_bytes / self.store_bw(active);
        let sample_parse = reads_per_fn * wl.sample_read_bytes / self.parse_bps;
        let sample_s = self.orchestration_s
            + self.cold_start_s
            + self
                .overlap(sample_io, sample_parse, k)
                .max(self.ops_floor_s(chunks));

        // ---- map: download ∥ sort, then partition, then exchange write. ----
        // K = 1 issues one ranged GET per assigned span; K > 1 splits the
        // spans into ~2K record-aligned chunks and keeps K in flight.
        let spans_per_fn = (chunks / w).ceil().max(1.0);
        let dl_requests = if k <= 1.0 { spans_per_fn } else { 2.0 * k };
        let map_dl = windows(dl_requests, k) * lat + d / bw;
        let map_sort = d / self.sort_bps;
        let map_io_compute = self.overlap(map_dl, map_sort, k);
        let map_partition = d / self.partition_bps;
        let (map_write, write_reqs) = match cand.exchange {
            ExchangeKind::Scatter => (windows(w, k) * lat + d / bw, w * w),
            ExchangeKind::Coalesced => (lat + d / bw, w),
            ExchangeKind::Direct => (windows(w, k) * self.direct_handshake_s, 0.0),
            ExchangeKind::VmRelay | ExchangeKind::ShardedRelay { .. } => (
                windows(w, k) * self.relay_latency_s
                    + self.relay_transfer_s(d, wl.data_bytes, relay_shards),
                0.0,
            ),
            ExchangeKind::Auto => unreachable!(),
        };
        let mut map_s = self.orchestration_s
            + self.cold_start_s
            + (map_io_compute + map_partition + map_write)
                .max(self.ops_floor_s(w * dl_requests + write_reqs));
        // A pre-warmed relay boots in the background from `prepare`; the
        // first map-phase request blocks for whatever boot time the
        // sampling and map compute did not hide.
        if relay_shards > 0.0 && relay_prewarm {
            let hidden = sample_s
                + self.orchestration_s
                + self.cold_start_s
                + map_io_compute
                + map_partition;
            map_s += (self.relay_provision_s - hidden).max(0.0);
        }

        // ---- reduce: windowed gather, k-way merge, run PUT. ----
        let (gather, gather_reqs) = match cand.exchange {
            ExchangeKind::Scatter | ExchangeKind::Coalesced => {
                (windows(w, k) * lat + d / bw, w * w)
            }
            ExchangeKind::Direct => (
                windows(w, k) * self.direct_handshake_s
                    + d / self.fn_nic_bps
                    + self.direct_convoy_s(d, w, k),
                0.0,
            ),
            ExchangeKind::VmRelay | ExchangeKind::ShardedRelay { .. } => (
                windows(w, k) * self.relay_latency_s
                    + self.relay_transfer_s(d, wl.data_bytes, relay_shards),
                0.0,
            ),
            ExchangeKind::Auto => unreachable!(),
        };
        let merge = d / self.merge_bps;
        let run_put = lat + d / bw;
        let reduce_s = self.orchestration_s
            + self.cold_start_s
            + (gather + merge + run_put).max(self.ops_floor_s(gather_reqs + w));

        // ---- encode tail: each of E functions encodes ceil(W/E) runs. ----
        let e = wl.encode_workers;
        let encode_s = if e == 0 {
            0.0
        } else {
            let gang = (e.min(cand.workers.max(1))) as f64;
            let per = (w / gang).ceil();
            let ebw = self.store_bw(gang);
            self.orchestration_s
                + self.cold_start_s
                + per
                    * (2.0 * lat
                        + d / ebw
                        + d / self.encode_bps
                        + d * self.encode_output_ratio / ebw)
        };

        let makespan_s = prepare_s + sample_s + map_s + reduce_s + encode_s;
        let cost_dollars = self.cost(wl, cand, sample_s, map_s, reduce_s, encode_s, prepare_s);
        Estimate {
            prepare_s,
            sample_s,
            map_s,
            reduce_s,
            encode_s,
            makespan_s,
            cost_dollars,
        }
    }

    /// Itemized bill for one candidate, using [`PlanPrices::default`]
    /// rates (functions GB-seconds + store requests + relay VM hours).
    #[allow(clippy::too_many_arguments)]
    fn cost(
        &self,
        wl: &Workload,
        cand: &Candidate,
        sample_s: f64,
        map_s: f64,
        reduce_s: f64,
        encode_s: f64,
        prepare_s: f64,
    ) -> f64 {
        let p = PlanPrices::default();
        let w = cand.workers.max(1) as f64;
        let k = cand.io_concurrency.max(1) as f64;
        let chunks = wl.input_chunks.max(1) as f64;
        let overhead = self.orchestration_s + self.cold_start_s;
        // Busy function-seconds per phase (the per-function body time,
        // without driver orchestration).
        let active = w.min(chunks);
        let gang = (wl.encode_workers.min(cand.workers.max(1))) as f64;
        let fn_seconds = active * (sample_s - overhead).max(0.0)
            + w * (map_s - overhead).max(0.0)
            + w * (reduce_s - overhead).max(0.0)
            + if wl.encode_workers == 0 {
                0.0
            } else {
                gang * (encode_s - overhead).max(0.0)
            };
        let fn_cost = fn_seconds * p.fn_memory_gb * p.fn_gb_second;

        // Store request classes: A = mutations (PUT/LIST), B = reads.
        let dl_requests = if k <= 1.0 {
            (chunks / w).ceil().max(1.0)
        } else {
            2.0 * k
        };
        let mut class_a = 1.0 + w; // driver LISTs + reduce run PUTs
        let mut class_b = chunks + w * dl_requests; // sample + map reads
        match cand.exchange {
            ExchangeKind::Scatter => {
                class_a += w * w;
                class_b += w * w;
            }
            ExchangeKind::Coalesced => {
                class_a += w;
                class_b += w * w;
            }
            _ => {}
        }
        if wl.encode_workers > 0 {
            class_a += w; // archive PUTs
            class_b += w; // run GETs
        }
        let req_cost = class_a / 1_000.0 * p.class_a_per_k + class_b / 1_000.0 * p.class_b_per_k;

        // Relay VMs bill from provisioning start to stage cleanup.
        let vm_cost = match cand.exchange {
            ExchangeKind::VmRelay | ExchangeKind::ShardedRelay { .. } => {
                let shards = match cand.exchange {
                    ExchangeKind::ShardedRelay { shards, .. } => shards.max(1) as f64,
                    _ => 1.0,
                };
                let billed = self.relay_provision_s + prepare_s + sample_s + map_s + reduce_s;
                shards * billed / 3_600.0 * p.vm_per_hour
            }
            _ => 0.0,
        };
        fn_cost + req_cost + vm_cost
    }

    /// A cheap lower bound on any makespan achievable with `w` workers,
    /// over every backend and window: fixed phase overheads plus the
    /// unavoidable transfers (map download, one exchange direction,
    /// reduce write) at NIC speed and the serial compute. Used by the
    /// planner to prune whole (K, backend, shards) sub-spaces.
    pub fn lower_bound(&self, wl: &Workload, w: usize) -> f64 {
        let wf = w.max(1) as f64;
        let d = wl.data_bytes / wf;
        let phases = if wl.encode_workers > 0 { 4.0 } else { 3.0 };
        let best_bw = self.fn_nic_bps.min(self.store_conn_bps);
        let compute = d / self.sort_bps + d / self.partition_bps + d / self.merge_bps;
        phases * (self.orchestration_s + self.cold_start_s.min(self.warm_start_s))
            + 2.0 * d / best_bw
            + compute
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ModelParams {
        ModelParams::from_configs(
            &StoreConfig::default(),
            &FaasConfig::default(),
            &RelayConfig::default(),
            &DirectConfig::default(),
            &WorkModel::default(),
        )
    }

    fn workload() -> Workload {
        Workload {
            data_bytes: 3.5e9,
            input_chunks: 8,
            sample_read_bytes: 66.0e6,
            encode_workers: 8,
        }
    }

    fn cand(workers: usize, k: usize, exchange: ExchangeKind) -> Candidate {
        Candidate {
            workers,
            io_concurrency: k,
            exchange,
        }
    }

    #[test]
    fn estimates_are_finite_and_positive() {
        let p = params();
        let wl = workload();
        for exchange in [
            ExchangeKind::Scatter,
            ExchangeKind::Coalesced,
            ExchangeKind::VmRelay,
            ExchangeKind::Direct,
            ExchangeKind::ShardedRelay {
                shards: 4,
                prewarm: true,
            },
        ] {
            for w in [1, 8, 64, 128] {
                for k in [1, 4, 16] {
                    let e = p.estimate(&wl, &cand(w, k, exchange));
                    assert!(e.makespan_s.is_finite() && e.makespan_s > 0.0);
                    assert!(e.cost_dollars.is_finite() && e.cost_dollars > 0.0);
                    assert!(
                        (e.prepare_s + e.sample_s + e.map_s + e.reduce_s + e.encode_s
                            - e.makespan_s)
                            .abs()
                            < 1e-9,
                        "phases tile the makespan"
                    );
                }
            }
        }
    }

    #[test]
    fn table1_shape_is_reproduced() {
        // The paper's tuned pure-serverless run (W=8, K=4, scatter) lands
        // near 75 s; the model must be in that neighborhood.
        let e = params().estimate(&workload(), &cand(8, 4, ExchangeKind::Scatter));
        assert!(
            (60.0..=90.0).contains(&e.makespan_s),
            "Table-1 ballpark, got {:.1}s",
            e.makespan_s
        );
    }

    #[test]
    fn coalesced_never_loses_to_scatter() {
        let p = params();
        let wl = workload();
        for w in [4, 8, 16, 32, 64] {
            let s = p.estimate(&wl, &cand(w, 4, ExchangeKind::Scatter));
            let c = p.estimate(&wl, &cand(w, 4, ExchangeKind::Coalesced));
            assert!(c.makespan_s <= s.makespan_s + 1e-9, "W={}", w);
            assert!(c.cost_dollars <= s.cost_dollars + 1e-12, "W={}", w);
        }
    }

    #[test]
    fn windowed_io_overlaps_transfer_and_compute() {
        let p = params();
        let wl = workload();
        let seq = p.estimate(&wl, &cand(8, 1, ExchangeKind::Scatter));
        let win = p.estimate(&wl, &cand(8, 4, ExchangeKind::Scatter));
        assert!(win.map_s < seq.map_s, "K=4 must overlap download and sort");
        assert!(win.makespan_s < seq.makespan_s);
    }

    #[test]
    fn cold_relay_pays_provisioning_and_prewarm_hides_some() {
        let p = params();
        let wl = workload();
        let cold = p.estimate(&wl, &cand(8, 4, ExchangeKind::VmRelay));
        let store = p.estimate(&wl, &cand(8, 4, ExchangeKind::Coalesced));
        assert!(
            cold.makespan_s >= store.makespan_s + 30.0,
            "44 s provisioning dominates"
        );
        let warm = p.estimate(
            &wl,
            &cand(
                8,
                4,
                ExchangeKind::ShardedRelay {
                    shards: 1,
                    prewarm: true,
                },
            ),
        );
        assert!(warm.makespan_s < cold.makespan_s, "prewarm hides boot time");
    }

    #[test]
    fn more_shards_help_wide_fleets() {
        let p = params();
        let wl = workload();
        let one = p.estimate(
            &wl,
            &cand(
                64,
                4,
                ExchangeKind::ShardedRelay {
                    shards: 1,
                    prewarm: true,
                },
            ),
        );
        let eight = p.estimate(
            &wl,
            &cand(
                64,
                4,
                ExchangeKind::ShardedRelay {
                    shards: 8,
                    prewarm: true,
                },
            ),
        );
        assert!(eight.makespan_s < one.makespan_s, "relay NIC stops binding");
    }

    #[test]
    fn lower_bound_is_a_lower_bound() {
        let p = params();
        let wl = workload();
        for w in [2, 8, 32, 128] {
            let lb = p.lower_bound(&wl, w);
            for exchange in [
                ExchangeKind::Scatter,
                ExchangeKind::Coalesced,
                ExchangeKind::Direct,
            ] {
                for k in [1, 4, 16] {
                    let e = p.estimate(&wl, &cand(w, k, exchange));
                    assert!(
                        lb <= e.makespan_s + 1e-9,
                        "lb {:.2} vs {:.2} (W={} K={} {:?})",
                        lb,
                        e.makespan_s,
                        w,
                        k,
                        exchange
                    );
                }
            }
        }
    }

    #[test]
    fn direct_gather_charges_the_rendezvous_convoy() {
        // ROADMAP item 3: at K ≤ 2 all reducers convoy on the same
        // senders for the first windows; the model must charge that
        // serialization instead of assuming fully-overlapped streaming.
        let p = params();
        let wl = workload();
        let w = 8.0;
        let d = wl.data_bytes / w;
        let k1 = p.estimate(&wl, &cand(8, 1, ExchangeKind::Direct));
        let k2 = p.estimate(&wl, &cand(8, 2, ExchangeKind::Direct));
        let k8 = p.estimate(&wl, &cand(8, 8, ExchangeKind::Direct));
        // Convoy cost decays with K and vanishes once K >= W.
        assert!(k1.reduce_s > k2.reduce_s && k2.reduce_s > k8.reduce_s);
        assert!((p.direct_convoy_s(d, w, 8.0)).abs() < 1e-12);
        // The K=1 vs K=W reduce gap is at least the convoy term alone
        // (handshake windowing adds a little more on top).
        let convoy = p.direct_convoy_s(d, w, 1.0);
        assert!(convoy > 0.0);
        assert!(
            k1.reduce_s - k8.reduce_s >= convoy - 1e-9,
            "K=1 reduce {:.2}s vs K=8 {:.2}s, convoy {:.2}s",
            k1.reduce_s,
            k8.reduce_s,
            convoy
        );
    }

    #[test]
    fn params_round_trip_through_json() {
        let p = params();
        let text = faaspipe_json::to_string_pretty(&p);
        let back: ModelParams = faaspipe_json::from_str(&text).expect("parse");
        assert_eq!(back, p);
    }

    #[test]
    #[should_panic(expected = "concrete backends")]
    fn auto_is_rejected() {
        let _ = params().estimate(&workload(), &cand(8, 4, ExchangeKind::Auto));
    }
}
