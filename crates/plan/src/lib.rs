//! # faaspipe-plan — calibrated cost/latency model and execution planner
//!
//! The paper's central claim is that the *appropriate number of
//! functions* decides whether object storage or VM-driven data exchange
//! wins — but picking that number (and the I/O window, the exchange
//! backend, and the relay shard count) by hand-run sweeps is exactly the
//! manual tuning Primula automates. This crate closes the loop:
//!
//! 1. [`model`] — an **analytical cost/latency model**: closed-form
//!    per-phase makespan and bill estimates for the serverless sort +
//!    encode pipeline, parameterized by start-class latencies
//!    (cold/snapshot/warm), per-request overheads, bandwidth shares
//!    under W-way fair sharing, relay NIC/memory limits, and K-windowed
//!    I/O overlap ([`ModelParams`], [`Workload`], [`Candidate`],
//!    [`Estimate`]).
//! 2. [`mod@calibrate`] — a **calibrator** that fits those parameters from
//!    `faaspipe-trace` span data of a handful of cheap probe runs
//!    ([`ProbeSpec`], [`Calibration`]). Probe runs are pure functions of
//!    their seed, so calibration is deterministic and byte-identically
//!    reproducible.
//! 3. [`planner`] — a **planner** that enumerates and prunes the
//!    (W, K, backend, shards) space against the model and returns the
//!    predicted-optimal concrete configuration ([`Planner`], [`Plan`],
//!    [`SearchSpace`]). The executor exposes it end to end as
//!    `--exchange auto` / `"exchange": "auto"`.
//!
//! The model mirrors the simulator's mechanics (see DESIGN.md
//! "Planner" for the equations); E19 (`repro_autotuner`) validates its
//! predictions against simulated ground truth across the full
//! E15/E16/E17 grid and reports model error and planner regret.

pub mod calibrate;
pub mod model;
pub mod planner;

pub use calibrate::{calibrate, Calibration, CalibrationEvidence, ProbeRun, ProbeSpec};
pub use model::{Candidate, Estimate, ModelParams, PlanPrices, Workload};
pub use planner::{Plan, Planner, SearchSpace};
