//! Fitting [`ModelParams`] from traced probe runs.
//!
//! The calibrator consumes `faaspipe-trace` snapshots of a handful of
//! cheap, small probe runs plus the workload shape each probe ran
//! ([`ProbeSpec`]), and fits every parameter it has evidence for:
//!
//! - **start classes**: cold/warm start latencies are the mean durations
//!   of the platform's `ColdStart`/`WarmStart` spans (VM provisioning
//!   spans are split out separately);
//! - **orchestration**: mean duration of `Orchestration` spans;
//! - **store latency + bandwidth**: an ordinary least-squares fit of
//!   request duration against wire bytes over `StoreRequest` spans —
//!   intercept is the first-byte latency, slope the inverse effective
//!   per-connection bandwidth. Only probes with `io_concurrency == 1`
//!   feed the fit, so windowed flows sharing one connection cannot
//!   inflate the slope;
//! - **compute rates**: effective wire-bytes/sec by phase, from the
//!   `Compute` spans grouped under each invocation and the known byte
//!   counts of the probe workload. Map invocations interleave chunk
//!   sorts with one final partition pass; the last compute burst by
//!   start time is the partition, everything before it is sort;
//! - **encode output ratio**: traced archive PUT bytes over run GET
//!   bytes in the encode stage;
//! - **relay provisioning**: mean duration of `vm-provision` spans.
//!
//! Parameters with no evidence in any probe keep their `defaults`
//! values, and [`CalibrationEvidence`] records exactly how many samples
//! backed each fit so E19 (and a skeptical reader of
//! `results/calibration.json`) can tell fitted from inherited numbers.
//!
//! Probe runs are pure functions of their seed, spans are visited in
//! creation order, and every accumulation is order-stable — so the same
//! probes always produce the same `Calibration`, byte-for-byte identical
//! once serialized (the determinism test in `tests/planner.rs` checks
//! precisely this).

use faaspipe_trace::{Category, Span, SpanId, TraceData, Value};
use std::collections::HashMap;

use crate::model::ModelParams;

/// The workload shape one probe ran with — the known byte counts the
/// compute-rate fits divide by.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeSpec {
    /// Human-readable probe name (lands in the evidence report).
    pub label: String,
    /// Sort worker count W of the probe.
    pub workers: usize,
    /// I/O window K of the probe.
    pub io_concurrency: usize,
    /// Total modelled (wire) bytes the probe sorted.
    pub data_bytes: f64,
    /// Number of staged input objects.
    pub input_chunks: usize,
    /// Wire bytes one sample-phase range read fetched.
    pub sample_read_bytes: f64,
}

faaspipe_json::json_object! {
    ProbeSpec {
        req label,
        req workers,
        req io_concurrency,
        req data_bytes,
        req input_chunks,
        req sample_read_bytes,
    }
}

/// One traced probe: its workload shape and the recorded span data.
#[derive(Debug, Clone, Copy)]
pub struct ProbeRun<'a> {
    /// What the probe ran.
    pub spec: &'a ProbeSpec,
    /// What the simulator recorded.
    pub trace: &'a TraceData,
}

/// Sample counts behind each fitted parameter — zero means the
/// corresponding [`ModelParams`] field kept its default.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CalibrationEvidence {
    /// Probe runs consumed.
    pub probes: usize,
    /// Container cold starts averaged into `cold_start_s`.
    pub cold_starts: usize,
    /// Warm pickups averaged into `warm_start_s`.
    pub warm_starts: usize,
    /// Orchestration gaps averaged into `orchestration_s`.
    pub orchestrations: usize,
    /// Store requests in the latency/bandwidth least-squares fit.
    pub store_requests: usize,
    /// Sample-phase compute bursts behind `parse_bps`.
    pub parse_bursts: usize,
    /// Map-phase sort bursts behind `sort_bps`.
    pub sort_bursts: usize,
    /// Map-phase partition bursts behind `partition_bps`.
    pub partition_bursts: usize,
    /// Reduce-phase merge bursts behind `merge_bps`.
    pub merge_bursts: usize,
    /// Encode bursts behind `encode_bps`.
    pub encode_bursts: usize,
    /// Encode-stage PUT/GET pairs behind `encode_output_ratio`.
    pub encode_transfers: usize,
    /// VM provisioning delays averaged into `relay_provision_s`.
    pub vm_provisions: usize,
}

faaspipe_json::json_object! {
    CalibrationEvidence {
        req probes,
        req cold_starts,
        req warm_starts,
        req orchestrations,
        req store_requests,
        req parse_bursts,
        req sort_bursts,
        req partition_bursts,
        req merge_bursts,
        req encode_bursts,
        req encode_transfers,
        req vm_provisions,
    }
}

/// A fitted parameter set plus the evidence that backs it. Serializes
/// to `results/calibration.json` via `faaspipe_json::to_string_pretty`.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// The fitted (or default-inherited) model parameters.
    pub params: ModelParams,
    /// How many trace samples backed each fit.
    pub evidence: CalibrationEvidence,
}

faaspipe_json::json_object! {
    Calibration {
        req params,
        req evidence,
    }
}

/// Running mean that stays deterministic under in-order accumulation.
#[derive(Default)]
struct Mean {
    sum: f64,
    n: usize,
}

impl Mean {
    fn push(&mut self, v: f64) {
        self.sum += v;
        self.n += 1;
    }

    fn get(&self, fallback: f64) -> f64 {
        if self.n == 0 {
            fallback
        } else {
            self.sum / self.n as f64
        }
    }
}

/// Bytes-vs-seconds accumulator for an effective-throughput fit.
#[derive(Default)]
struct Rate {
    bytes: f64,
    secs: f64,
    n: usize,
}

impl Rate {
    fn push(&mut self, bytes: f64, secs: f64) {
        self.bytes += bytes;
        self.secs += secs;
        self.n += 1;
    }

    fn get(&self, fallback: f64) -> f64 {
        if self.n == 0 || self.secs <= 0.0 || self.bytes <= 0.0 {
            fallback
        } else {
            self.bytes / self.secs
        }
    }
}

fn attr_u64(span: &Span, key: &str) -> Option<u64> {
    span.attrs
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            Value::U64(u) => Some(*u),
            Value::I64(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        })
}

fn attr_str<'a>(span: &'a Span, key: &str) -> Option<&'a str> {
    span.attrs
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        })
}

fn duration_s(span: &Span) -> Option<f64> {
    span.duration().map(|d| d.as_secs_f64())
}

/// Which pipeline phase an invocation tag belongs to, by suffix.
#[derive(Clone, Copy, PartialEq, Eq)]
enum PhaseTag {
    Sample,
    Map,
    Reduce,
    Encode,
}

fn phase_of(tag: &str) -> Option<PhaseTag> {
    if tag.ends_with("/sample") {
        Some(PhaseTag::Sample)
    } else if tag.ends_with("/map") {
        Some(PhaseTag::Map)
    } else if tag.ends_with("/reduce") {
        Some(PhaseTag::Reduce)
    } else if tag.ends_with("/enc") {
        Some(PhaseTag::Encode)
    } else {
        None
    }
}

/// Fits model parameters from `probes`, inheriting `defaults` for every
/// parameter without trace evidence (relay request latency, NIC, memory
/// and disk limits, the direct handshake, and the reserved snapshot
/// start class never have probe evidence and always pass through).
pub fn calibrate(probes: &[ProbeRun<'_>], defaults: &ModelParams) -> Calibration {
    let mut ev = CalibrationEvidence {
        probes: probes.len(),
        ..CalibrationEvidence::default()
    };
    let mut cold = Mean::default();
    let mut warm = Mean::default();
    let mut orch = Mean::default();
    let mut provision = Mean::default();
    let mut parse = Rate::default();
    let mut sort = Rate::default();
    let mut partition = Rate::default();
    let mut merge = Rate::default();
    let mut encode = Rate::default();
    // (bytes, secs) pairs for the store least-squares fit.
    let mut store_points: Vec<(f64, f64)> = Vec::new();
    let mut enc_get_bytes = 0.0;
    let mut enc_put_bytes = 0.0;

    for probe in probes {
        let spec = probe.spec;
        let spans = &probe.trace.spans;
        // Invocation id → phase, resolved from the "tag" attribute.
        let mut inv_phase: HashMap<SpanId, PhaseTag> = HashMap::new();
        for span in spans {
            if span.category == Category::Invocation {
                if let Some(phase) = attr_str(span, "tag").and_then(phase_of) {
                    inv_phase.insert(span.id, phase);
                }
            }
        }

        // Map invocations interleave per-chunk sort bursts with one
        // final partition burst; collect each map invocation's compute
        // spans so the last-by-start can be split off as the partition.
        let mut map_bursts: HashMap<SpanId, Vec<&Span>> = HashMap::new();
        // Ordered list of map parents, for deterministic iteration.
        let mut map_order: Vec<SpanId> = Vec::new();

        let per_fn_bytes = spec.data_bytes / spec.workers.max(1) as f64;
        let reads_per_fn = (spec.input_chunks.max(1) as f64 / spec.workers.max(1) as f64).ceil();

        for span in spans {
            match span.category {
                Category::ColdStart => {
                    if let Some(d) = duration_s(span) {
                        if span.name == "vm-provision" {
                            provision.push(d);
                            ev.vm_provisions += 1;
                        } else {
                            cold.push(d);
                            ev.cold_starts += 1;
                        }
                    }
                }
                Category::WarmStart => {
                    if let Some(d) = duration_s(span) {
                        warm.push(d);
                        ev.warm_starts += 1;
                    }
                }
                Category::Orchestration => {
                    // The tracker logs zero-width note spans on the same
                    // category; only real dispatch sleeps carry width.
                    if let Some(d) = duration_s(span) {
                        if d > 0.0 {
                            orch.push(d);
                            ev.orchestrations += 1;
                        }
                    }
                }
                Category::StoreRequest => {
                    // Exchange backends (relay, direct) reuse the
                    // StoreRequest category for their data-plane
                    // transfers but run on their own tracks; only
                    // genuine object-store requests inform the fit.
                    if span.track != "store" {
                        continue;
                    }
                    let bytes = (attr_u64(span, "bytes_in").unwrap_or(0)
                        + attr_u64(span, "bytes_out").unwrap_or(0))
                        as f64;
                    if spec.io_concurrency <= 1 {
                        if let Some(d) = duration_s(span) {
                            store_points.push((bytes, d));
                        }
                    }
                    // Encode-stage transfers also feed the output ratio.
                    let lane_is_encode = span.lane.ends_with("/enc");
                    if lane_is_encode {
                        if span.name.starts_with("GET") {
                            enc_get_bytes += attr_u64(span, "bytes_out").unwrap_or(0) as f64;
                            ev.encode_transfers += 1;
                        } else if span.name.starts_with("PUT") {
                            enc_put_bytes += attr_u64(span, "bytes_in").unwrap_or(0) as f64;
                        }
                    }
                }
                Category::Compute => {
                    let Some(parent) = span.parent else { continue };
                    let Some(&phase) = inv_phase.get(&parent) else {
                        continue;
                    };
                    let Some(d) = duration_s(span) else { continue };
                    match phase {
                        PhaseTag::Sample => {
                            parse.push(reads_per_fn * spec.sample_read_bytes, d);
                            ev.parse_bursts += 1;
                        }
                        PhaseTag::Map => {
                            let entry = map_bursts.entry(parent).or_default();
                            if entry.is_empty() {
                                map_order.push(parent);
                            }
                            entry.push(span);
                        }
                        PhaseTag::Reduce => {
                            merge.push(per_fn_bytes, d);
                            ev.merge_bursts += 1;
                        }
                        PhaseTag::Encode => {
                            // Per-burst bytes are attributed below from
                            // traced GET sizes; here only the time sums.
                            encode.push(0.0, d);
                            ev.encode_bursts += 1;
                        }
                    }
                }
                _ => {}
            }
        }

        // Split each map invocation's bursts: last-by-start is the
        // partition pass over the function's full assignment, the rest
        // together sorted the same bytes chunk by chunk.
        for parent in map_order {
            let mut bursts = map_bursts.remove(&parent).unwrap_or_default();
            if bursts.is_empty() {
                continue;
            }
            bursts.sort_by_key(|s| s.start);
            let last = bursts.pop().expect("non-empty");
            if let Some(d) = duration_s(last) {
                partition.push(per_fn_bytes, d);
                ev.partition_bursts += 1;
            }
            let sort_secs: f64 = bursts.iter().filter_map(|s| duration_s(s)).sum();
            if sort_secs > 0.0 {
                sort.push(per_fn_bytes, sort_secs);
                ev.sort_bursts += bursts.len();
            }
        }
    }

    // Encode rate: total encode compute time vs total traced GET bytes.
    let encode_bps = if encode.n > 0 && encode.secs > 0.0 && enc_get_bytes > 0.0 {
        enc_get_bytes / encode.secs
    } else {
        defaults.encode_bps
    };
    let encode_output_ratio = if enc_get_bytes > 0.0 && enc_put_bytes > 0.0 {
        enc_put_bytes / enc_get_bytes
    } else {
        defaults.encode_output_ratio
    };

    // Store least-squares: duration = latency + bytes / bandwidth.
    let (store_latency_s, store_conn_bps) = fit_store(
        &store_points,
        defaults.store_latency_s,
        defaults.store_conn_bps,
    );
    ev.store_requests = store_points.len();

    let params = ModelParams {
        cold_start_s: cold.get(defaults.cold_start_s),
        snapshot_start_s: defaults.snapshot_start_s,
        warm_start_s: warm.get(defaults.warm_start_s),
        orchestration_s: orch.get(defaults.orchestration_s),
        store_latency_s,
        store_conn_bps,
        store_agg_bps: defaults.store_agg_bps,
        store_ops_per_sec: defaults.store_ops_per_sec,
        fn_nic_bps: defaults.fn_nic_bps,
        relay_latency_s: defaults.relay_latency_s,
        relay_nic_bps: defaults.relay_nic_bps,
        relay_mem_bytes: defaults.relay_mem_bytes,
        relay_disk_bps: defaults.relay_disk_bps,
        relay_provision_s: provision.get(defaults.relay_provision_s),
        direct_handshake_s: defaults.direct_handshake_s,
        parse_bps: parse.get(defaults.parse_bps),
        sort_bps: sort.get(defaults.sort_bps),
        partition_bps: partition.get(defaults.partition_bps),
        merge_bps: merge.get(defaults.merge_bps),
        encode_bps,
        encode_output_ratio,
    };
    Calibration {
        params,
        evidence: ev,
    }
}

/// Ordinary least squares of `secs = latency + bytes / bandwidth` over
/// the collected store requests. Falls back to the defaults when the
/// points are too few, degenerate (all one size), or the fit comes out
/// non-physical (non-positive slope or negative intercept).
fn fit_store(points: &[(f64, f64)], default_lat: f64, default_bps: f64) -> (f64, f64) {
    if points.len() < 2 {
        return (default_lat, default_bps);
    }
    let n = points.len() as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (x, y) in points {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
    }
    if sxx <= 0.0 {
        return (default_lat, default_bps);
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    if slope <= 0.0 || intercept < 0.0 {
        return (default_lat, default_bps);
    }
    (intercept, 1.0 / slope)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faaspipe_des::{SimDuration, SimTime};

    fn span(
        id: u64,
        parent: Option<u64>,
        category: Category,
        name: &str,
        lane: &str,
        start_s: u64,
        dur_ms: u64,
    ) -> Span {
        let start = SimTime::from_nanos(start_s * 1_000_000_000);
        Span {
            id: SpanId::from_u64(id),
            parent: parent.map(SpanId::from_u64),
            category,
            name: name.to_string(),
            track: if category == Category::StoreRequest {
                "store".to_string()
            } else {
                "faas".to_string()
            },
            lane: lane.to_string(),
            start,
            end: Some(start + SimDuration::from_millis(dur_ms)),
            attrs: Vec::new(),
        }
    }

    fn defaults() -> ModelParams {
        ModelParams::from_configs(
            &faaspipe_store::StoreConfig::default(),
            &faaspipe_faas::FaasConfig::default(),
            &faaspipe_exchange::RelayConfig::default(),
            &faaspipe_exchange::DirectConfig::default(),
            &faaspipe_shuffle::WorkModel::default(),
        )
    }

    fn spec() -> ProbeSpec {
        ProbeSpec {
            label: "unit".to_string(),
            workers: 2,
            io_concurrency: 1,
            data_bytes: 2.0e9,
            input_chunks: 2,
            sample_read_bytes: 1.0e6,
        }
    }

    #[test]
    fn empty_probes_inherit_defaults() {
        let d = defaults();
        let cal = calibrate(&[], &d);
        assert_eq!(cal.params, d);
        assert_eq!(cal.evidence, CalibrationEvidence::default());
    }

    #[test]
    fn start_classes_are_mean_span_durations() {
        let mut trace = TraceData::default();
        trace.spans.push(span(
            1,
            None,
            Category::ColdStart,
            "cold-start",
            "inv-1",
            0,
            400,
        ));
        trace.spans.push(span(
            2,
            None,
            Category::ColdStart,
            "cold-start",
            "inv-2",
            1,
            600,
        ));
        trace.spans.push(span(
            3,
            None,
            Category::WarmStart,
            "warm-start",
            "inv-3",
            2,
            30,
        ));
        trace.spans.push(span(
            4,
            None,
            Category::Orchestration,
            "orchestrate",
            "driver",
            3,
            7500,
        ));
        trace.spans.push(span(
            5,
            None,
            Category::ColdStart,
            "vm-provision",
            "vm-1",
            4,
            40_000,
        ));
        let s = spec();
        let cal = calibrate(
            &[ProbeRun {
                spec: &s,
                trace: &trace,
            }],
            &defaults(),
        );
        assert!((cal.params.cold_start_s - 0.5).abs() < 1e-9);
        assert!((cal.params.warm_start_s - 0.03).abs() < 1e-9);
        assert!((cal.params.orchestration_s - 7.5).abs() < 1e-9);
        assert!((cal.params.relay_provision_s - 40.0).abs() < 1e-9);
        assert_eq!(cal.evidence.cold_starts, 2);
        assert_eq!(cal.evidence.vm_provisions, 1);
    }

    #[test]
    fn map_bursts_split_into_sort_and_partition() {
        let mut trace = TraceData::default();
        let mut inv = span(1, None, Category::Invocation, "map", "inv-1", 0, 0);
        inv.attrs.push(("tag".to_string(), Value::from("sort/map")));
        trace.spans.push(inv);
        // Two chunk sorts then one partition pass; per-fn bytes = 1e9.
        trace.spans.push(span(
            2,
            Some(1),
            Category::Compute,
            "compute",
            "inv-1",
            1,
            4_000,
        ));
        trace.spans.push(span(
            3,
            Some(1),
            Category::Compute,
            "compute",
            "inv-1",
            6,
            4_000,
        ));
        trace.spans.push(span(
            4,
            Some(1),
            Category::Compute,
            "compute",
            "inv-1",
            11,
            2_000,
        ));
        let s = spec();
        let cal = calibrate(
            &[ProbeRun {
                spec: &s,
                trace: &trace,
            }],
            &defaults(),
        );
        assert_eq!(cal.evidence.sort_bursts, 2);
        assert_eq!(cal.evidence.partition_bursts, 1);
        // 1e9 bytes / 8 s of sorting, 1e9 / 2 s of partitioning.
        assert!((cal.params.sort_bps - 1.25e8).abs() / 1.25e8 < 1e-9);
        assert!((cal.params.partition_bps - 5.0e8).abs() / 5.0e8 < 1e-9);
    }

    #[test]
    fn store_fit_recovers_latency_and_bandwidth() {
        let mut trace = TraceData::default();
        // duration = 0.02 + bytes / 1e8, exactly linear.
        for (i, bytes) in [1_000_000u64, 50_000_000, 200_000_000].iter().enumerate() {
            let mut s = span(
                i as u64 + 1,
                None,
                Category::StoreRequest,
                "GET x",
                "sort/map",
                i as u64,
                20 + bytes / 100_000,
            );
            s.attrs.push(("bytes_out".to_string(), Value::U64(*bytes)));
            trace.spans.push(s);
        }
        let s = spec();
        let cal = calibrate(
            &[ProbeRun {
                spec: &s,
                trace: &trace,
            }],
            &defaults(),
        );
        assert_eq!(cal.evidence.store_requests, 3);
        assert!((cal.params.store_latency_s - 0.02).abs() < 1e-6);
        assert!((cal.params.store_conn_bps - 1.0e8).abs() / 1.0e8 < 1e-6);
    }

    #[test]
    fn windowed_probes_are_excluded_from_the_store_fit() {
        let mut trace = TraceData::default();
        let mut s1 = span(1, None, Category::StoreRequest, "GET x", "sort/map", 0, 500);
        s1.attrs
            .push(("bytes_out".to_string(), Value::U64(1_000_000)));
        trace.spans.push(s1);
        let mut s = spec();
        s.io_concurrency = 4;
        let d = defaults();
        let cal = calibrate(
            &[ProbeRun {
                spec: &s,
                trace: &trace,
            }],
            &d,
        );
        assert_eq!(cal.evidence.store_requests, 0);
        assert_eq!(cal.params.store_latency_s, d.store_latency_s);
    }
}
