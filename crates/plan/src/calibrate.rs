//! Fitting [`ModelParams`] from traced probe runs.
//!
//! The calibrator consumes `faaspipe-trace` snapshots of a handful of
//! cheap, small probe runs plus the workload shape each probe ran
//! ([`ProbeSpec`]), and fits every parameter it has evidence for:
//!
//! - **start classes**: cold/warm start latencies are the mean durations
//!   of the platform's `ColdStart`/`WarmStart` spans (VM provisioning
//!   spans are split out separately);
//! - **orchestration**: mean duration of `Orchestration` spans;
//! - **store latency + bandwidth**: an ordinary least-squares fit of
//!   request duration against wire bytes over `StoreRequest` spans —
//!   intercept is the first-byte latency, slope the inverse effective
//!   per-connection bandwidth. Only probes with `io_concurrency == 1`
//!   feed the fit, so windowed flows sharing one connection cannot
//!   inflate the slope;
//! - **compute rates**: effective wire-bytes/sec by phase, from the
//!   `Compute` spans grouped under each invocation and the known byte
//!   counts of the probe workload. Map invocations interleave chunk
//!   sorts with one final partition pass; the last compute burst by
//!   start time is the partition, everything before it is sort;
//! - **encode output ratio**: traced archive PUT bytes over run GET
//!   bytes in the encode stage;
//! - **relay provisioning**: mean duration of `vm-provision` spans;
//! - **relay NIC**: the peak aggregate throughput over concurrently
//!   active relay `xfer` flows — but only from probes whose fleet can
//!   saturate the relay (`W · fn_nic ≥ relay_nic`); an unsaturated
//!   probe observes the functions' NICs, not the relay's, and must
//!   inherit the default;
//! - **relay memory + disk**: when a probe overflows the relay
//!   (`*.spilled_bytes` counter is non-zero), the capacity is the peak
//!   of the `*.mem_bytes` gauge and the disk bandwidth comes from the
//!   `spilled`-marked request spans' duration residual after the wire
//!   flow and request latency are subtracted;
//! - **direct handshake**: the minimum residual of a direct `STREAM`
//!   span over its nested `xfer` flow — the minimum, because any
//!   rendezvous polling only ever adds time on top of the handshake.
//!
//! Parameters with no evidence in any probe keep their `defaults`
//! values, and [`CalibrationEvidence`] records exactly how many samples
//! backed each fit so E19 (and a skeptical reader of
//! `results/calibration.json`) can tell fitted from inherited numbers.
//!
//! Probe runs are pure functions of their seed, spans are visited in
//! creation order, and every accumulation is order-stable — so the same
//! probes always produce the same `Calibration`, byte-for-byte identical
//! once serialized (the determinism test in `tests/planner.rs` checks
//! precisely this). The probe runs themselves may execute concurrently
//! (each is a shared-nothing sim; E19 drives them through
//! `faaspipe-sweep`): the calibrator only sees the finished
//! `ProbeRun` slice, and because that slice arrives in submission
//! order regardless of which probe finished first, the fit — and
//! `results/calibration.json` — is identical at every job count.

use faaspipe_trace::{Category, Span, SpanId, TraceData, Value};
use std::collections::HashMap;

use crate::model::ModelParams;

/// The workload shape one probe ran with — the known byte counts the
/// compute-rate fits divide by.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeSpec {
    /// Human-readable probe name (lands in the evidence report).
    pub label: String,
    /// Sort worker count W of the probe.
    pub workers: usize,
    /// I/O window K of the probe.
    pub io_concurrency: usize,
    /// Total modelled (wire) bytes the probe sorted.
    pub data_bytes: f64,
    /// Number of staged input objects.
    pub input_chunks: usize,
    /// Wire bytes one sample-phase range read fetched.
    pub sample_read_bytes: f64,
}

faaspipe_json::json_object! {
    ProbeSpec {
        req label,
        req workers,
        req io_concurrency,
        req data_bytes,
        req input_chunks,
        req sample_read_bytes,
    }
}

/// One traced probe: its workload shape and the recorded span data.
#[derive(Debug, Clone, Copy)]
pub struct ProbeRun<'a> {
    /// What the probe ran.
    pub spec: &'a ProbeSpec,
    /// What the simulator recorded.
    pub trace: &'a TraceData,
}

/// Sample counts behind each fitted parameter — zero means the
/// corresponding [`ModelParams`] field kept its default.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CalibrationEvidence {
    /// Probe runs consumed.
    pub probes: usize,
    /// Container cold starts averaged into `cold_start_s`.
    pub cold_starts: usize,
    /// Warm pickups averaged into `warm_start_s`.
    pub warm_starts: usize,
    /// Orchestration gaps averaged into `orchestration_s`.
    pub orchestrations: usize,
    /// Store requests in the latency/bandwidth least-squares fit.
    pub store_requests: usize,
    /// Sample-phase compute bursts behind `parse_bps`.
    pub parse_bursts: usize,
    /// Map-phase sort bursts behind `sort_bps`.
    pub sort_bursts: usize,
    /// Map-phase partition bursts behind `partition_bps`.
    pub partition_bursts: usize,
    /// Reduce-phase merge bursts behind `merge_bps`.
    pub merge_bursts: usize,
    /// Encode bursts behind `encode_bps`.
    pub encode_bursts: usize,
    /// Encode-stage PUT/GET pairs behind `encode_output_ratio`.
    pub encode_transfers: usize,
    /// VM provisioning delays averaged into `relay_provision_s`.
    pub vm_provisions: usize,
    /// Relay `xfer` flows (from saturation-capable probes) behind
    /// `relay_nic_bps`.
    pub relay_flows: usize,
    /// Spilled relay requests behind `relay_mem_bytes` and
    /// `relay_disk_bps`.
    pub relay_spills: usize,
    /// Direct STREAM/flow pairs behind `direct_handshake_s`.
    pub direct_handshakes: usize,
}

faaspipe_json::json_object! {
    CalibrationEvidence {
        req probes,
        req cold_starts,
        req warm_starts,
        req orchestrations,
        req store_requests,
        req parse_bursts,
        req sort_bursts,
        req partition_bursts,
        req merge_bursts,
        req encode_bursts,
        req encode_transfers,
        req vm_provisions,
        req relay_flows,
        req relay_spills,
        req direct_handshakes,
    }
}

/// A fitted parameter set plus the evidence that backs it. Serializes
/// to `results/calibration.json` via `faaspipe_json::to_string_pretty`.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// The fitted (or default-inherited) model parameters.
    pub params: ModelParams,
    /// How many trace samples backed each fit.
    pub evidence: CalibrationEvidence,
}

faaspipe_json::json_object! {
    Calibration {
        req params,
        req evidence,
    }
}

/// Running mean that stays deterministic under in-order accumulation.
#[derive(Default)]
struct Mean {
    sum: f64,
    n: usize,
}

impl Mean {
    fn push(&mut self, v: f64) {
        self.sum += v;
        self.n += 1;
    }

    fn get(&self, fallback: f64) -> f64 {
        if self.n == 0 {
            fallback
        } else {
            self.sum / self.n as f64
        }
    }
}

/// Bytes-vs-seconds accumulator for an effective-throughput fit.
#[derive(Default)]
struct Rate {
    bytes: f64,
    secs: f64,
    n: usize,
}

impl Rate {
    fn push(&mut self, bytes: f64, secs: f64) {
        self.bytes += bytes;
        self.secs += secs;
        self.n += 1;
    }

    fn get(&self, fallback: f64) -> f64 {
        if self.n == 0 || self.secs <= 0.0 || self.bytes <= 0.0 {
            fallback
        } else {
            self.bytes / self.secs
        }
    }
}

fn attr_u64(span: &Span, key: &str) -> Option<u64> {
    span.attrs
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            Value::U64(u) => Some(*u),
            Value::I64(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        })
}

fn attr_str<'a>(span: &'a Span, key: &str) -> Option<&'a str> {
    span.attrs
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        })
}

fn attr_bool(span: &Span, key: &str) -> bool {
    span.attrs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| matches!(v, Value::Bool(true)))
        .unwrap_or(false)
}

fn duration_s(span: &Span) -> Option<f64> {
    span.duration().map(|d| d.as_secs_f64())
}

/// Which pipeline phase an invocation tag belongs to, by suffix.
#[derive(Clone, Copy, PartialEq, Eq)]
enum PhaseTag {
    Sample,
    Map,
    Reduce,
    Encode,
}

fn phase_of(tag: &str) -> Option<PhaseTag> {
    if tag.ends_with("/sample") {
        Some(PhaseTag::Sample)
    } else if tag.ends_with("/map") {
        Some(PhaseTag::Map)
    } else if tag.ends_with("/reduce") {
        Some(PhaseTag::Reduce)
    } else if tag.ends_with("/enc") {
        Some(PhaseTag::Encode)
    } else {
        None
    }
}

/// Fits model parameters from `probes`, inheriting `defaults` for every
/// parameter without trace evidence (the relay request latency and the
/// reserved snapshot start class never have probe evidence and always
/// pass through; the relay NIC/memory/disk and the direct handshake are
/// fitted when the probe set includes relay/direct runs that exercise
/// them — see the module docs for the saturation and spill
/// requirements).
pub fn calibrate(probes: &[ProbeRun<'_>], defaults: &ModelParams) -> Calibration {
    let mut ev = CalibrationEvidence {
        probes: probes.len(),
        ..CalibrationEvidence::default()
    };
    let mut cold = Mean::default();
    let mut warm = Mean::default();
    let mut orch = Mean::default();
    let mut provision = Mean::default();
    let mut parse = Rate::default();
    let mut sort = Rate::default();
    let mut partition = Rate::default();
    let mut merge = Rate::default();
    let mut encode = Rate::default();
    // (bytes, secs) pairs for the store least-squares fit.
    let mut store_points: Vec<(f64, f64)> = Vec::new();
    let mut enc_get_bytes = 0.0;
    let mut enc_put_bytes = 0.0;
    // Peak aggregate relay throughput over saturation-capable probes.
    let mut relay_nic_peak = 0.0f64;
    // Peak relay memory gauge in probes that actually spilled.
    let mut relay_mem_peak = 0.0f64;
    let mut relay_disk = Rate::default();
    // Running minimum STREAM-minus-flow residual (rendezvous polling
    // only ever adds on top of the handshake, so min is the handshake).
    let mut direct_hs: Option<f64> = None;

    for probe in probes {
        let spec = probe.spec;
        let spans = &probe.trace.spans;
        // Invocation id → phase, resolved from the "tag" attribute.
        let mut inv_phase: HashMap<SpanId, PhaseTag> = HashMap::new();
        // Exchange request span → its nested wire-flow duration.
        let mut flow_dur: HashMap<SpanId, f64> = HashMap::new();
        // (start_s, end_s, wire_bytes) of relay wire flows, span order.
        let mut relay_flows: Vec<(f64, f64, f64)> = Vec::new();
        for span in spans {
            match span.category {
                Category::Invocation => {
                    if let Some(phase) = attr_str(span, "tag").and_then(phase_of) {
                        inv_phase.insert(span.id, phase);
                    }
                }
                Category::Flow if span.name == "xfer" => {
                    let Some(d) = duration_s(span) else { continue };
                    if let Some(parent) = span.parent {
                        flow_dur.insert(parent, d);
                    }
                    if span.track == "relay" && d > 0.0 {
                        if let Some(wire) = attr_u64(span, "wire_bytes") {
                            let start = span.start.as_secs_f64();
                            relay_flows.push((start, start + d, wire as f64));
                        }
                    }
                }
                _ => {}
            }
        }

        // Map invocations interleave per-chunk sort bursts with one
        // final partition burst; collect each map invocation's compute
        // spans so the last-by-start can be split off as the partition.
        let mut map_bursts: HashMap<SpanId, Vec<&Span>> = HashMap::new();
        // Ordered list of map parents, for deterministic iteration.
        let mut map_order: Vec<SpanId> = Vec::new();

        let per_fn_bytes = spec.data_bytes / spec.workers.max(1) as f64;
        let reads_per_fn = (spec.input_chunks.max(1) as f64 / spec.workers.max(1) as f64).ceil();

        for span in spans {
            match span.category {
                Category::ColdStart => {
                    if let Some(d) = duration_s(span) {
                        if span.name == "vm-provision" {
                            provision.push(d);
                            ev.vm_provisions += 1;
                        } else {
                            cold.push(d);
                            ev.cold_starts += 1;
                        }
                    }
                }
                Category::WarmStart => {
                    if let Some(d) = duration_s(span) {
                        warm.push(d);
                        ev.warm_starts += 1;
                    }
                }
                Category::Orchestration => {
                    // The tracker logs zero-width note spans on the same
                    // category; only real dispatch sleeps carry width.
                    if let Some(d) = duration_s(span) {
                        if d > 0.0 {
                            orch.push(d);
                            ev.orchestrations += 1;
                        }
                    }
                }
                Category::StoreRequest if span.track == "store" => {
                    let bytes = (attr_u64(span, "bytes_in").unwrap_or(0)
                        + attr_u64(span, "bytes_out").unwrap_or(0))
                        as f64;
                    if spec.io_concurrency <= 1 {
                        if let Some(d) = duration_s(span) {
                            store_points.push((bytes, d));
                        }
                    }
                    // Encode-stage transfers also feed the output ratio.
                    let lane_is_encode = span.lane.ends_with("/enc");
                    if lane_is_encode {
                        if span.name.starts_with("GET") {
                            enc_get_bytes += attr_u64(span, "bytes_out").unwrap_or(0) as f64;
                            ev.encode_transfers += 1;
                        } else if span.name.starts_with("PUT") {
                            enc_put_bytes += attr_u64(span, "bytes_in").unwrap_or(0) as f64;
                        }
                    }
                }
                // Relay/direct data-plane requests run on their own
                // tracks; their spans fit the relay disk and the direct
                // handshake instead of the store line.
                Category::StoreRequest if span.track == "relay" => {
                    if !attr_bool(span, "spilled") || attr_bool(span, "failed") {
                        continue;
                    }
                    let Some(d) = duration_s(span) else { continue };
                    let Some(&flow) = flow_dur.get(&span.id) else {
                        continue;
                    };
                    let wire = attr_u64(span, "bytes").unwrap_or(0) as f64;
                    // Span = request latency + wire flow + disk pass.
                    let disk_s = d - flow - defaults.relay_latency_s;
                    if wire > 0.0 && disk_s > 0.0 {
                        relay_disk.push(wire, disk_s);
                        ev.relay_spills += 1;
                    }
                }
                Category::StoreRequest if span.track == "direct" => {
                    if span.name != "STREAM" || attr_bool(span, "failed") {
                        continue;
                    }
                    let Some(d) = duration_s(span) else { continue };
                    let Some(&flow) = flow_dur.get(&span.id) else {
                        continue;
                    };
                    let residual = d - flow;
                    if residual >= 0.0 {
                        direct_hs = Some(direct_hs.map_or(residual, |m| m.min(residual)));
                        ev.direct_handshakes += 1;
                    }
                }
                Category::Compute => {
                    let Some(parent) = span.parent else { continue };
                    let Some(&phase) = inv_phase.get(&parent) else {
                        continue;
                    };
                    let Some(d) = duration_s(span) else { continue };
                    match phase {
                        PhaseTag::Sample => {
                            parse.push(reads_per_fn * spec.sample_read_bytes, d);
                            ev.parse_bursts += 1;
                        }
                        PhaseTag::Map => {
                            let entry = map_bursts.entry(parent).or_default();
                            if entry.is_empty() {
                                map_order.push(parent);
                            }
                            entry.push(span);
                        }
                        PhaseTag::Reduce => {
                            merge.push(per_fn_bytes, d);
                            ev.merge_bursts += 1;
                        }
                        PhaseTag::Encode => {
                            // Per-burst bytes are attributed below from
                            // traced GET sizes; here only the time sums.
                            encode.push(0.0, d);
                            ev.encode_bursts += 1;
                        }
                    }
                }
                _ => {}
            }
        }

        // Split each map invocation's bursts: last-by-start is the
        // partition pass over the function's full assignment, the rest
        // together sorted the same bytes chunk by chunk.
        for parent in map_order {
            let mut bursts = map_bursts.remove(&parent).unwrap_or_default();
            if bursts.is_empty() {
                continue;
            }
            bursts.sort_by_key(|s| s.start);
            let last = bursts.pop().expect("non-empty");
            if let Some(d) = duration_s(last) {
                partition.push(per_fn_bytes, d);
                ev.partition_bursts += 1;
            }
            let sort_secs: f64 = bursts.iter().filter_map(|s| duration_s(s)).sum();
            if sort_secs > 0.0 {
                sort.push(per_fn_bytes, sort_secs);
                ev.sort_bursts += bursts.len();
            }
        }

        // Relay NIC: peak aggregate throughput over a busy period — a
        // maximal chain of time-overlapping relay flows. All its bytes
        // crossed the relay NIC within the period, so bytes/duration
        // never exceeds the capacity, and reaches it when the period is
        // saturated. Only a fleet whose aggregate function NICs exceed
        // the relay NIC can saturate it — an unsaturated probe would
        // "fit" the functions' NICs instead, so it contributes nothing.
        let can_saturate =
            spec.workers.max(1) as f64 * defaults.fn_nic_bps >= defaults.relay_nic_bps;
        if can_saturate && !relay_flows.is_empty() {
            // Flows are in span-creation order, i.e. sorted by start.
            let (mut s0, mut e0, mut bytes) = (relay_flows[0].0, relay_flows[0].1, 0.0f64);
            let mut flush = |s0: f64, e0: f64, bytes: f64| {
                if e0 > s0 && bytes > 0.0 {
                    relay_nic_peak = relay_nic_peak.max(bytes / (e0 - s0));
                }
            };
            for &(s, e, b) in &relay_flows {
                if s > e0 {
                    flush(s0, e0, bytes);
                    s0 = s;
                    e0 = e;
                    bytes = 0.0;
                }
                e0 = e0.max(e);
                bytes += b;
            }
            flush(s0, e0, bytes);
            ev.relay_flows += relay_flows.len();
        }

        // Relay memory: once a shard spilled, its memory gauge peaked at
        // (just under) the configured capacity.
        for spilled in &probe.trace.counters {
            let Some(label) = spilled.name.strip_suffix(".spilled_bytes") else {
                continue;
            };
            if spilled.last_value() <= 0.0 {
                continue;
            }
            let mem_name = format!("{}.mem_bytes", label);
            if let Some(mem) = probe.trace.counters.iter().find(|c| c.name == mem_name) {
                let peak = mem.points.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
                relay_mem_peak = relay_mem_peak.max(peak);
            }
        }
    }

    // Encode rate: total encode compute time vs total traced GET bytes.
    let encode_bps = if encode.n > 0 && encode.secs > 0.0 && enc_get_bytes > 0.0 {
        enc_get_bytes / encode.secs
    } else {
        defaults.encode_bps
    };
    let encode_output_ratio = if enc_get_bytes > 0.0 && enc_put_bytes > 0.0 {
        enc_put_bytes / enc_get_bytes
    } else {
        defaults.encode_output_ratio
    };

    // Store least-squares: duration = latency + bytes / bandwidth.
    let (store_latency_s, store_conn_bps) = fit_store(
        &store_points,
        defaults.store_latency_s,
        defaults.store_conn_bps,
    );
    ev.store_requests = store_points.len();

    let params = ModelParams {
        cold_start_s: cold.get(defaults.cold_start_s),
        snapshot_start_s: defaults.snapshot_start_s,
        warm_start_s: warm.get(defaults.warm_start_s),
        orchestration_s: orch.get(defaults.orchestration_s),
        store_latency_s,
        store_conn_bps,
        store_agg_bps: defaults.store_agg_bps,
        store_ops_per_sec: defaults.store_ops_per_sec,
        fn_nic_bps: defaults.fn_nic_bps,
        relay_latency_s: defaults.relay_latency_s,
        relay_nic_bps: if relay_nic_peak > 0.0 {
            relay_nic_peak
        } else {
            defaults.relay_nic_bps
        },
        relay_mem_bytes: if relay_mem_peak > 0.0 {
            relay_mem_peak
        } else {
            defaults.relay_mem_bytes
        },
        relay_disk_bps: relay_disk.get(defaults.relay_disk_bps),
        relay_provision_s: provision.get(defaults.relay_provision_s),
        direct_handshake_s: direct_hs.unwrap_or(defaults.direct_handshake_s),
        parse_bps: parse.get(defaults.parse_bps),
        sort_bps: sort.get(defaults.sort_bps),
        partition_bps: partition.get(defaults.partition_bps),
        merge_bps: merge.get(defaults.merge_bps),
        encode_bps,
        encode_output_ratio,
    };
    Calibration {
        params,
        evidence: ev,
    }
}

/// Ordinary least squares of `secs = latency + bytes / bandwidth` over
/// the collected store requests. Falls back to the defaults when the
/// points are too few, degenerate (all one size), or the fit comes out
/// non-physical (non-positive slope or negative intercept).
fn fit_store(points: &[(f64, f64)], default_lat: f64, default_bps: f64) -> (f64, f64) {
    if points.len() < 2 {
        return (default_lat, default_bps);
    }
    let n = points.len() as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (x, y) in points {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
    }
    if sxx <= 0.0 {
        return (default_lat, default_bps);
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    if slope <= 0.0 || intercept < 0.0 {
        return (default_lat, default_bps);
    }
    (intercept, 1.0 / slope)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faaspipe_des::{SimDuration, SimTime};

    fn span(
        id: u64,
        parent: Option<u64>,
        category: Category,
        name: &str,
        lane: &str,
        start_s: u64,
        dur_ms: u64,
    ) -> Span {
        let start = SimTime::from_nanos(start_s * 1_000_000_000);
        Span {
            id: SpanId::from_u64(id),
            parent: parent.map(SpanId::from_u64),
            category,
            name: name.to_string(),
            track: if category == Category::StoreRequest {
                "store".to_string()
            } else {
                "faas".to_string()
            },
            lane: lane.to_string(),
            start,
            end: Some(start + SimDuration::from_millis(dur_ms)),
            attrs: Vec::new(),
        }
    }

    fn defaults() -> ModelParams {
        ModelParams::from_configs(
            &faaspipe_store::StoreConfig::default(),
            &faaspipe_faas::FaasConfig::default(),
            &faaspipe_exchange::RelayConfig::default(),
            &faaspipe_exchange::DirectConfig::default(),
            &faaspipe_shuffle::WorkModel::default(),
        )
    }

    fn spec() -> ProbeSpec {
        ProbeSpec {
            label: "unit".to_string(),
            workers: 2,
            io_concurrency: 1,
            data_bytes: 2.0e9,
            input_chunks: 2,
            sample_read_bytes: 1.0e6,
        }
    }

    #[test]
    fn empty_probes_inherit_defaults() {
        let d = defaults();
        let cal = calibrate(&[], &d);
        assert_eq!(cal.params, d);
        assert_eq!(cal.evidence, CalibrationEvidence::default());
    }

    #[test]
    fn start_classes_are_mean_span_durations() {
        let mut trace = TraceData::default();
        trace.spans.push(span(
            1,
            None,
            Category::ColdStart,
            "cold-start",
            "inv-1",
            0,
            400,
        ));
        trace.spans.push(span(
            2,
            None,
            Category::ColdStart,
            "cold-start",
            "inv-2",
            1,
            600,
        ));
        trace.spans.push(span(
            3,
            None,
            Category::WarmStart,
            "warm-start",
            "inv-3",
            2,
            30,
        ));
        trace.spans.push(span(
            4,
            None,
            Category::Orchestration,
            "orchestrate",
            "driver",
            3,
            7500,
        ));
        trace.spans.push(span(
            5,
            None,
            Category::ColdStart,
            "vm-provision",
            "vm-1",
            4,
            40_000,
        ));
        let s = spec();
        let cal = calibrate(
            &[ProbeRun {
                spec: &s,
                trace: &trace,
            }],
            &defaults(),
        );
        assert!((cal.params.cold_start_s - 0.5).abs() < 1e-9);
        assert!((cal.params.warm_start_s - 0.03).abs() < 1e-9);
        assert!((cal.params.orchestration_s - 7.5).abs() < 1e-9);
        assert!((cal.params.relay_provision_s - 40.0).abs() < 1e-9);
        assert_eq!(cal.evidence.cold_starts, 2);
        assert_eq!(cal.evidence.vm_provisions, 1);
    }

    #[test]
    fn map_bursts_split_into_sort_and_partition() {
        let mut trace = TraceData::default();
        let mut inv = span(1, None, Category::Invocation, "map", "inv-1", 0, 0);
        inv.attrs.push(("tag".to_string(), Value::from("sort/map")));
        trace.spans.push(inv);
        // Two chunk sorts then one partition pass; per-fn bytes = 1e9.
        trace.spans.push(span(
            2,
            Some(1),
            Category::Compute,
            "compute",
            "inv-1",
            1,
            4_000,
        ));
        trace.spans.push(span(
            3,
            Some(1),
            Category::Compute,
            "compute",
            "inv-1",
            6,
            4_000,
        ));
        trace.spans.push(span(
            4,
            Some(1),
            Category::Compute,
            "compute",
            "inv-1",
            11,
            2_000,
        ));
        let s = spec();
        let cal = calibrate(
            &[ProbeRun {
                spec: &s,
                trace: &trace,
            }],
            &defaults(),
        );
        assert_eq!(cal.evidence.sort_bursts, 2);
        assert_eq!(cal.evidence.partition_bursts, 1);
        // 1e9 bytes / 8 s of sorting, 1e9 / 2 s of partitioning.
        assert!((cal.params.sort_bps - 1.25e8).abs() / 1.25e8 < 1e-9);
        assert!((cal.params.partition_bps - 5.0e8).abs() / 5.0e8 < 1e-9);
    }

    #[test]
    fn store_fit_recovers_latency_and_bandwidth() {
        let mut trace = TraceData::default();
        // duration = 0.02 + bytes / 1e8, exactly linear.
        for (i, bytes) in [1_000_000u64, 50_000_000, 200_000_000].iter().enumerate() {
            let mut s = span(
                i as u64 + 1,
                None,
                Category::StoreRequest,
                "GET x",
                "sort/map",
                i as u64,
                20 + bytes / 100_000,
            );
            s.attrs.push(("bytes_out".to_string(), Value::U64(*bytes)));
            trace.spans.push(s);
        }
        let s = spec();
        let cal = calibrate(
            &[ProbeRun {
                spec: &s,
                trace: &trace,
            }],
            &defaults(),
        );
        assert_eq!(cal.evidence.store_requests, 3);
        assert!((cal.params.store_latency_s - 0.02).abs() < 1e-6);
        assert!((cal.params.store_conn_bps - 1.0e8).abs() / 1.0e8 < 1e-6);
    }

    fn span_on(
        track: &str,
        id: u64,
        parent: Option<u64>,
        category: Category,
        name: &str,
        start_ms: u64,
        dur_ms: u64,
    ) -> Span {
        let mut s = span(id, parent, category, name, "sort/reduce", 0, dur_ms);
        s.start = SimTime::from_nanos(start_ms * 1_000_000);
        s.end = Some(s.start + SimDuration::from_millis(dur_ms));
        s.track = track.to_string();
        s
    }

    #[test]
    fn direct_handshake_is_the_minimum_stream_residual() {
        let mut trace = TraceData::default();
        // STREAM = 150 ms with a 100 ms nested flow → 50 ms residual.
        trace.spans.push(span_on(
            "direct",
            1,
            None,
            Category::StoreRequest,
            "STREAM",
            0,
            150,
        ));
        let mut flow = span_on("direct", 2, Some(1), Category::Flow, "xfer", 50, 100);
        flow.attrs
            .push(("wire_bytes".to_string(), Value::U64(1_000_000)));
        trace.spans.push(flow);
        // A second STREAM that caught a 300 ms rendezvous poll on top —
        // polling only adds, so the fit must keep the minimum.
        trace.spans.push(span_on(
            "direct",
            3,
            None,
            Category::StoreRequest,
            "STREAM",
            200,
            450,
        ));
        let mut flow2 = span_on("direct", 4, Some(3), Category::Flow, "xfer", 550, 100);
        flow2
            .attrs
            .push(("wire_bytes".to_string(), Value::U64(1_000_000)));
        trace.spans.push(flow2);
        let s = spec();
        let cal = calibrate(
            &[ProbeRun {
                spec: &s,
                trace: &trace,
            }],
            &defaults(),
        );
        assert_eq!(cal.evidence.direct_handshakes, 2);
        assert!((cal.params.direct_handshake_s - 0.05).abs() < 1e-9);
    }

    #[test]
    fn relay_nic_fits_only_from_saturation_capable_probes() {
        let d = defaults();
        let mut trace = TraceData::default();
        // Two relay flows fully overlapping in time, 100 MB over 1 s
        // each → 200 MB/s aggregate at every midpoint.
        for id in [1u64, 2] {
            let mut flow = span_on("relay", id, None, Category::Flow, "xfer", 0, 1_000);
            flow.attrs
                .push(("wire_bytes".to_string(), Value::U64(100_000_000)));
            trace.spans.push(flow);
        }
        // W=2 cannot saturate the default 2 GB/s relay NIC: inherit.
        let mut small = spec();
        small.workers = 2;
        let cal = calibrate(
            &[ProbeRun {
                spec: &small,
                trace: &trace,
            }],
            &d,
        );
        assert_eq!(cal.evidence.relay_flows, 0);
        assert_eq!(cal.params.relay_nic_bps, d.relay_nic_bps);
        // A wide-enough fleet makes the same flows valid evidence.
        let mut wide = spec();
        wide.workers = 64;
        let cal = calibrate(
            &[ProbeRun {
                spec: &wide,
                trace: &trace,
            }],
            &d,
        );
        assert_eq!(cal.evidence.relay_flows, 2);
        assert!((cal.params.relay_nic_bps - 2.0e8).abs() / 2.0e8 < 1e-9);
    }

    #[test]
    fn relay_spill_fits_memory_capacity_and_disk_bandwidth() {
        use faaspipe_trace::{CounterKind, CounterSeries};
        let d = defaults();
        let mut trace = TraceData::default();
        // A spilled GET: latency + 2 s disk + 1 s flow. 700 MB wire →
        // disk at 350 MB/s.
        let mut get = span_on(
            "relay",
            1,
            None,
            Category::StoreRequest,
            "GET",
            0,
            3_000 + (d.relay_latency_s * 1e3) as u64,
        );
        get.attrs
            .push(("bytes".to_string(), Value::U64(700_000_000)));
        get.attrs.push(("spilled".to_string(), Value::Bool(true)));
        trace.spans.push(get);
        let mut flow = span_on("relay", 2, Some(1), Category::Flow, "xfer", 2_100, 1_000);
        flow.attrs
            .push(("wire_bytes".to_string(), Value::U64(700_000_000)));
        trace.spans.push(flow);
        // The shard's gauges: memory peaked at 1 GB before spilling.
        trace.counters.push(CounterSeries {
            name: "relay.mem_bytes".to_string(),
            kind: CounterKind::Gauge,
            points: vec![
                (SimTime::from_nanos(0), 4.0e8),
                (SimTime::from_nanos(1), 1.0e9),
            ],
        });
        trace.counters.push(CounterSeries {
            name: "relay.spilled_bytes".to_string(),
            kind: CounterKind::Cumulative,
            points: vec![(SimTime::from_nanos(1), 7.0e8)],
        });
        let s = spec();
        let cal = calibrate(
            &[ProbeRun {
                spec: &s,
                trace: &trace,
            }],
            &d,
        );
        assert_eq!(cal.evidence.relay_spills, 1);
        assert!((cal.params.relay_mem_bytes - 1.0e9).abs() < 1.0);
        assert!((cal.params.relay_disk_bps - 3.5e8).abs() / 3.5e8 < 1e-6);
    }

    #[test]
    fn unspilled_relay_probes_inherit_memory_and_disk_defaults() {
        use faaspipe_trace::{CounterKind, CounterSeries};
        let d = defaults();
        let mut trace = TraceData::default();
        trace.counters.push(CounterSeries {
            name: "relay.mem_bytes".to_string(),
            kind: CounterKind::Gauge,
            points: vec![(SimTime::from_nanos(0), 5.0e8)],
        });
        let s = spec();
        let cal = calibrate(
            &[ProbeRun {
                spec: &s,
                trace: &trace,
            }],
            &d,
        );
        assert_eq!(cal.evidence.relay_spills, 0);
        assert_eq!(cal.params.relay_mem_bytes, d.relay_mem_bytes);
        assert_eq!(cal.params.relay_disk_bps, d.relay_disk_bps);
    }

    #[test]
    fn windowed_probes_are_excluded_from_the_store_fit() {
        let mut trace = TraceData::default();
        let mut s1 = span(1, None, Category::StoreRequest, "GET x", "sort/map", 0, 500);
        s1.attrs
            .push(("bytes_out".to_string(), Value::U64(1_000_000)));
        trace.spans.push(s1);
        let mut s = spec();
        s.io_concurrency = 4;
        let d = defaults();
        let cal = calibrate(
            &[ProbeRun {
                spec: &s,
                trace: &trace,
            }],
            &d,
        );
        assert_eq!(cal.evidence.store_requests, 0);
        assert_eq!(cal.params.store_latency_s, d.store_latency_s);
    }
}
