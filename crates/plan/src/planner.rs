//! Enumerating and pruning the (W, K, backend, shards) space.
//!
//! The planner walks a ladder of worker counts, a ladder of I/O
//! windows, and every exchange-backend family (scatter, coalesced,
//! direct, and the relay with each shard count × {cold, prewarm}),
//! asks the model ([`ModelParams::estimate`]) for each candidate, and
//! keeps the predicted-fastest configuration with a deterministic
//! tie-break (makespan, then bill, then fewer workers, then smaller
//! window, then enumeration order).
//!
//! Before expanding a worker count's (K, backend) sub-space, the
//! planner checks the model's cheap per-W lower bound
//! ([`ModelParams::lower_bound`]) against the best makespan found so
//! far and skips the whole sub-space when even the bound cannot win.
//! Pruning is *sound* for ranking — the bound never exceeds any real
//! estimate — so the pruned search returns exactly the exhaustive
//! search's pick (asserted by a test below), just after fewer model
//! evaluations. The whole search is closed-form arithmetic: the
//! Criterion bench (`benches/plan.rs`) keeps a full enumeration well
//! under a millisecond, which is what makes `--exchange auto` free at
//! stage-launch time.

use faaspipe_exchange::ExchangeKind;

use crate::model::{Candidate, Estimate, ModelParams, Workload};

/// The candidate grid the planner enumerates. [`SearchSpace::default`]
/// covers the paper's experimental ranges; constraints narrow it when
/// the user pins a dimension (e.g. `--workers 16 --exchange auto` plans
/// only K, backend, and shards).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchSpace {
    /// Worker-count ladder (ascending).
    pub workers: Vec<usize>,
    /// I/O-window ladder (ascending).
    pub io_windows: Vec<usize>,
    /// Relay shard counts to try (ascending).
    pub relay_shards: Vec<usize>,
}

impl Default for SearchSpace {
    fn default() -> SearchSpace {
        SearchSpace {
            workers: vec![2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256],
            io_windows: vec![1, 2, 4, 8, 16],
            relay_shards: vec![1, 2, 4, 8],
        }
    }
}

impl SearchSpace {
    /// Drops worker counts above `cap` (the platform's account limit or
    /// the executor's autotune ceiling). Always keeps at least the
    /// smallest rung, clamped to the cap.
    pub fn cap_workers(mut self, cap: usize) -> SearchSpace {
        let cap = cap.max(1);
        self.workers.retain(|&w| w <= cap);
        if self.workers.is_empty() {
            self.workers.push(cap);
        }
        self
    }

    /// Pins the worker count (a `"workers": N` spec with
    /// `"exchange": "auto"` plans only the remaining dimensions).
    pub fn pin_workers(mut self, w: usize) -> SearchSpace {
        self.workers = vec![w.max(1)];
        self
    }

    /// Pins the I/O window.
    pub fn pin_io(mut self, k: usize) -> SearchSpace {
        self.io_windows = vec![k.max(1)];
        self
    }
}

/// The planner's pick: a fully concrete configuration, the model's
/// prediction for it, and search statistics for the trace span.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Chosen worker count W.
    pub workers: usize,
    /// Chosen I/O window K.
    pub io_concurrency: usize,
    /// Chosen backend — always concrete, never [`ExchangeKind::Auto`].
    pub exchange: ExchangeKind,
    /// The model's estimate for the chosen configuration.
    pub predicted: Estimate,
    /// Candidates the model evaluated.
    pub evaluated: usize,
    /// Candidates skipped by the per-W lower-bound prune.
    pub pruned: usize,
}

/// Searches a [`SearchSpace`] against a [`ModelParams`] fit.
#[derive(Debug, Clone)]
pub struct Planner {
    /// Model parameters (calibrated or config-derived).
    pub params: ModelParams,
    /// Candidate grid.
    pub space: SearchSpace,
}

impl Planner {
    /// A planner over the default grid.
    pub fn new(params: ModelParams) -> Planner {
        Planner {
            params,
            space: SearchSpace::default(),
        }
    }

    /// Replaces the candidate grid.
    pub fn with_space(mut self, space: SearchSpace) -> Planner {
        self.space = space;
        self
    }

    /// Every backend the grid expands for one (W, K) cell, in stable
    /// enumeration order. `(shards = 1, prewarm = false)` is expressed
    /// as the plain [`ExchangeKind::VmRelay`] so explicit-backend runs
    /// and planned runs name identical configurations.
    fn backends(&self) -> Vec<ExchangeKind> {
        let mut out = vec![
            ExchangeKind::Scatter,
            ExchangeKind::Coalesced,
            ExchangeKind::Direct,
        ];
        for &shards in &self.space.relay_shards {
            for prewarm in [false, true] {
                out.push(if shards == 1 && !prewarm {
                    ExchangeKind::VmRelay
                } else {
                    ExchangeKind::ShardedRelay { shards, prewarm }
                });
            }
        }
        out
    }

    /// Runs the pruned search and returns the predicted-optimal plan.
    ///
    /// Deterministic: the grid is walked in a fixed order and ties
    /// break on (makespan, bill, fewer workers, smaller window, first
    /// seen), so a given (params, space, workload) always yields the
    /// same plan.
    pub fn plan(&self, wl: &Workload) -> Plan {
        let backends = self.backends();
        let cell = self.space.io_windows.len() * backends.len();
        let mut best: Option<Plan> = None;
        let mut evaluated = 0;
        let mut pruned = 0;
        // Walk the ladder top-down: wide fleets have small per-function
        // transfers, so a strong incumbent appears early and the
        // transfer-dominated small-W sub-spaces fail the bound.
        for &w in self.space.workers.iter().rev() {
            if let Some(b) = &best {
                if self.params.lower_bound(wl, w) >= b.predicted.makespan_s {
                    pruned += cell;
                    continue;
                }
            }
            for &k in &self.space.io_windows {
                for &exchange in &backends {
                    let cand = Candidate {
                        workers: w,
                        io_concurrency: k,
                        exchange,
                    };
                    let predicted = self.params.estimate(wl, &cand);
                    evaluated += 1;
                    let better = match &best {
                        None => true,
                        Some(b) => {
                            let lhs = (predicted.makespan_s, predicted.cost_dollars, w, k);
                            let rhs = (
                                b.predicted.makespan_s,
                                b.predicted.cost_dollars,
                                b.workers,
                                b.io_concurrency,
                            );
                            lhs.partial_cmp(&rhs) == Some(std::cmp::Ordering::Less)
                        }
                    };
                    if better {
                        best = Some(Plan {
                            workers: w,
                            io_concurrency: k,
                            exchange,
                            predicted,
                            evaluated: 0,
                            pruned: 0,
                        });
                    }
                }
            }
        }
        let mut plan = best.expect("search space is never empty");
        plan.evaluated = evaluated;
        plan.pruned = pruned;
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faaspipe_exchange::{DirectConfig, RelayConfig};
    use faaspipe_faas::FaasConfig;
    use faaspipe_shuffle::WorkModel;
    use faaspipe_store::StoreConfig;

    fn params() -> ModelParams {
        ModelParams::from_configs(
            &StoreConfig::default(),
            &FaasConfig::default(),
            &RelayConfig::default(),
            &DirectConfig::default(),
            &WorkModel::default(),
        )
    }

    fn workload() -> Workload {
        Workload {
            data_bytes: 3.5e9,
            input_chunks: 8,
            sample_read_bytes: 66.0e6,
            encode_workers: 8,
        }
    }

    #[test]
    fn plan_is_concrete_and_deterministic() {
        let planner = Planner::new(params());
        let wl = workload();
        let a = planner.plan(&wl);
        let b = planner.plan(&wl);
        assert_eq!(a, b);
        assert!(a.exchange != ExchangeKind::Auto);
        assert!(a.workers >= 2 && a.io_concurrency >= 1);
        assert!(a.evaluated > 0);
    }

    #[test]
    fn pruning_matches_the_exhaustive_search() {
        let p = params();
        let wl = workload();
        let pruned = Planner::new(p.clone()).plan(&wl);
        // Exhaustive reference: evaluate every candidate with no bound.
        let planner = Planner::new(p.clone());
        let mut best: Option<(f64, f64, usize, usize, ExchangeKind)> = None;
        for &w in &planner.space.workers {
            for &k in &planner.space.io_windows {
                for exchange in planner.backends() {
                    let e = p.estimate(
                        &wl,
                        &Candidate {
                            workers: w,
                            io_concurrency: k,
                            exchange,
                        },
                    );
                    let key = (e.makespan_s, e.cost_dollars, w, k, exchange);
                    let better = match &best {
                        None => true,
                        Some(b) => {
                            (key.0, key.1, key.2, key.3).partial_cmp(&(b.0, b.1, b.2, b.3))
                                == Some(std::cmp::Ordering::Less)
                        }
                    };
                    if better {
                        best = Some(key);
                    }
                }
            }
        }
        let best = best.unwrap();
        assert_eq!(pruned.workers, best.2);
        assert_eq!(pruned.io_concurrency, best.3);
        assert_eq!(pruned.exchange, best.4);
        assert!(pruned.pruned > 0, "the bound should skip some sub-spaces");
    }

    #[test]
    fn pinned_dimensions_are_respected() {
        let plan = Planner::new(params())
            .with_space(SearchSpace::default().pin_workers(16).pin_io(4))
            .plan(&workload());
        assert_eq!(plan.workers, 16);
        assert_eq!(plan.io_concurrency, 4);
    }

    #[test]
    fn cap_keeps_at_least_one_rung() {
        let space = SearchSpace::default().cap_workers(1);
        assert_eq!(space.workers, vec![1]);
        let space = SearchSpace::default().cap_workers(64);
        assert!(space.workers.iter().all(|&w| w <= 64));
    }

    #[test]
    fn planner_beats_or_matches_the_naive_default() {
        // The pick must be at least as good as the untuned W=8, K=1
        // scatter configuration the paper starts from.
        let p = params();
        let wl = workload();
        let plan = Planner::new(p.clone()).plan(&wl);
        let naive = p.estimate(
            &wl,
            &Candidate {
                workers: 8,
                io_concurrency: 1,
                exchange: ExchangeKind::Scatter,
            },
        );
        assert!(plan.predicted.makespan_s <= naive.makespan_s);
    }

    #[test]
    fn relay_single_cold_shard_is_named_vm_relay() {
        let planner = Planner::new(params());
        let backends = planner.backends();
        assert!(backends.contains(&ExchangeKind::VmRelay));
        assert!(!backends.contains(&ExchangeKind::ShardedRelay {
            shards: 1,
            prewarm: false
        }));
    }
}
