//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()` returns the guard directly (a poisoned lock is recovered
//! rather than propagated, matching parking_lot's behaviour of not
//! tracking poisoning at all). Only the surface the workspace uses is
//! provided.

use std::fmt;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Mutex<T> {
        Mutex::new(value)
    }
}

/// A reader-writer lock whose guards never report poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
