//! Adaptive binary range coder (carry-less, LZMA-style) with bit-tree
//! byte models, an order-1 context model, and adaptive integer coding.
//!
//! This is METHCOMP's entropy stage in this reproduction: the per-field
//! streams (coverage, methylation levels, position deltas) are coded with
//! adaptive models that track their skewed, slowly-drifting distributions
//! far better than a static Huffman table.

use crate::error::CodecError;

const TOP: u32 = 1 << 24;
const PROB_BITS: u32 = 11;
const PROB_ONE: u16 = 1 << PROB_BITS;
const PROB_INIT: u16 = PROB_ONE / 2;
const MOVE_BITS: u32 = 5;

/// An adaptive probability of a bit being 0, in 11-bit fixed point.
#[derive(Debug, Clone, Copy)]
pub struct BitModel(u16);

impl Default for BitModel {
    fn default() -> Self {
        BitModel(PROB_INIT)
    }
}

impl BitModel {
    /// Creates a model with the 50/50 prior.
    pub fn new() -> Self {
        BitModel::default()
    }

    fn update(&mut self, bit: bool) {
        if bit {
            self.0 -= self.0 >> MOVE_BITS;
        } else {
            self.0 += (PROB_ONE - self.0) >> MOVE_BITS;
        }
    }
}

/// The range encoder.
///
/// ```
/// use faaspipe_codec::range::{BitModel, RangeDecoder, RangeEncoder};
///
/// # fn main() -> Result<(), faaspipe_codec::CodecError> {
/// let bits = [true, false, false, true, false, false, false, false];
/// let mut enc = RangeEncoder::new();
/// let mut m = BitModel::new();
/// for &b in &bits {
///     enc.encode_bit(&mut m, b);
/// }
/// let packed = enc.finish();
/// let mut dec = RangeDecoder::new(&packed)?;
/// let mut m = BitModel::new();
/// for &b in &bits {
///     assert_eq!(dec.decode_bit(&mut m)?, b);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct RangeEncoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
}

impl Default for RangeEncoder {
    fn default() -> Self {
        RangeEncoder::new()
    }
}

impl RangeEncoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        RangeEncoder {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: Vec::new(),
        }
    }

    /// Bytes emitted so far (excluding the unflushed tail).
    pub fn byte_len(&self) -> usize {
        self.out.len()
    }

    fn shift_low(&mut self) {
        if self.low < 0xFF00_0000 || self.low > 0xFFFF_FFFF {
            let carry = (self.low >> 32) as u8;
            let mut cache = self.cache;
            loop {
                self.out.push(cache.wrapping_add(carry));
                cache = 0xFF;
                self.cache_size -= 1;
                if self.cache_size == 0 {
                    break;
                }
            }
            self.cache = (self.low >> 24) as u8;
        }
        self.cache_size += 1;
        self.low = (self.low << 8) & 0xFFFF_FFFF;
    }

    /// Encodes one bit under an adaptive model.
    pub fn encode_bit(&mut self, model: &mut BitModel, bit: bool) {
        let bound = (self.range >> PROB_BITS) * model.0 as u32;
        if !bit {
            self.range = bound;
        } else {
            self.low += bound as u64;
            self.range -= bound;
        }
        model.update(bit);
        while self.range < TOP {
            self.range <<= 8;
            self.shift_low();
        }
    }

    /// Encodes `count` raw bits (MSB first) without a model.
    pub fn encode_direct(&mut self, value: u64, count: u32) {
        for i in (0..count).rev() {
            self.range >>= 1;
            let bit = (value >> i) & 1;
            if bit == 1 {
                self.low += self.range as u64;
            }
            while self.range < TOP {
                self.range <<= 8;
                self.shift_low();
            }
        }
    }

    /// Flushes and returns the compressed bytes.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

/// The range decoder (mirror of [`RangeEncoder`]).
#[derive(Debug)]
pub struct RangeDecoder<'a> {
    range: u32,
    code: u32,
    data: &'a [u8],
    pos: usize,
}

impl<'a> RangeDecoder<'a> {
    /// Initializes the decoder over `data`.
    ///
    /// # Errors
    /// [`CodecError::UnexpectedEof`] if the stream is shorter than the
    /// 5-byte preamble.
    pub fn new(data: &'a [u8]) -> Result<Self, CodecError> {
        if data.len() < 5 {
            return Err(CodecError::UnexpectedEof);
        }
        let mut code = 0u32;
        for &b in &data[1..5] {
            code = (code << 8) | b as u32;
        }
        Ok(RangeDecoder {
            range: u32::MAX,
            code,
            data,
            pos: 5,
        })
    }

    fn next_byte(&mut self) -> u8 {
        // Reading past the end yields zeros; corrupt streams are caught by
        // the container's checksums/length checks.
        let b = self.data.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// Bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Decodes one bit under an adaptive model.
    ///
    /// # Errors
    /// Currently infallible in-band (overruns read as zeros) but kept
    /// fallible for container-level symmetry.
    pub fn decode_bit(&mut self, model: &mut BitModel) -> Result<bool, CodecError> {
        let bound = (self.range >> PROB_BITS) * model.0 as u32;
        let bit = if self.code < bound {
            self.range = bound;
            false
        } else {
            self.code -= bound;
            self.range -= bound;
            true
        };
        model.update(bit);
        while self.range < TOP {
            self.range <<= 8;
            self.code = (self.code << 8) | self.next_byte() as u32;
        }
        Ok(bit)
    }

    /// Decodes `count` raw bits (MSB first).
    ///
    /// # Errors
    /// See [`RangeDecoder::decode_bit`].
    pub fn decode_direct(&mut self, count: u32) -> Result<u64, CodecError> {
        let mut value = 0u64;
        for _ in 0..count {
            self.range >>= 1;
            let bit = if self.code >= self.range {
                self.code -= self.range;
                1
            } else {
                0
            };
            value = (value << 1) | bit;
            while self.range < TOP {
                self.range <<= 8;
                self.code = (self.code << 8) | self.next_byte() as u32;
            }
        }
        Ok(value)
    }
}

/// A bit-tree model over 8-bit symbols (255 adaptive nodes).
#[derive(Debug, Clone)]
pub struct ByteModel {
    nodes: Box<[BitModel; 256]>,
}

impl Default for ByteModel {
    fn default() -> Self {
        ByteModel {
            nodes: Box::new([BitModel::new(); 256]),
        }
    }
}

impl ByteModel {
    /// Creates a fresh model.
    pub fn new() -> Self {
        ByteModel::default()
    }

    /// Encodes a byte.
    pub fn encode(&mut self, enc: &mut RangeEncoder, byte: u8) {
        let mut node = 1usize;
        for i in (0..8).rev() {
            let bit = (byte >> i) & 1 == 1;
            enc.encode_bit(&mut self.nodes[node], bit);
            node = (node << 1) | bit as usize;
        }
    }

    /// Decodes a byte.
    ///
    /// # Errors
    /// See [`RangeDecoder::decode_bit`].
    pub fn decode(&mut self, dec: &mut RangeDecoder<'_>) -> Result<u8, CodecError> {
        let mut node = 1usize;
        for _ in 0..8 {
            let bit = dec.decode_bit(&mut self.nodes[node])?;
            node = (node << 1) | bit as usize;
        }
        Ok((node & 0xFF) as u8)
    }
}

/// An order-1 byte model: one [`ByteModel`] per previous-byte context.
#[derive(Debug)]
pub struct Order1Model {
    contexts: Vec<ByteModel>,
    prev: u8,
}

impl Default for Order1Model {
    fn default() -> Self {
        Order1Model {
            contexts: vec![ByteModel::new(); 256],
            prev: 0,
        }
    }
}

impl Order1Model {
    /// Creates a fresh model (context = 0).
    pub fn new() -> Self {
        Order1Model::default()
    }

    /// Encodes a byte in the running context.
    pub fn encode(&mut self, enc: &mut RangeEncoder, byte: u8) {
        self.contexts[self.prev as usize].encode(enc, byte);
        self.prev = byte;
    }

    /// Decodes a byte in the running context.
    ///
    /// # Errors
    /// See [`RangeDecoder::decode_bit`].
    pub fn decode(&mut self, dec: &mut RangeDecoder<'_>) -> Result<u8, CodecError> {
        let byte = self.contexts[self.prev as usize].decode(dec)?;
        self.prev = byte;
        Ok(byte)
    }
}

/// Adaptive unsigned-integer model: the bit-width is coded with a small
/// bit-tree (highly skewed in practice), the payload bits directly.
#[derive(Debug, Clone)]
pub struct UIntModel {
    width_nodes: Box<[BitModel; 128]>,
}

impl Default for UIntModel {
    fn default() -> Self {
        UIntModel {
            width_nodes: Box::new([BitModel::new(); 128]),
        }
    }
}

impl UIntModel {
    /// Creates a fresh model.
    pub fn new() -> Self {
        UIntModel::default()
    }

    /// Encodes an arbitrary `u64`.
    pub fn encode(&mut self, enc: &mut RangeEncoder, value: u64) {
        let width = 64 - value.leading_zeros(); // 0 for value 0
        debug_assert!(width <= 64);
        // 7-bit tree over widths 0..=64.
        let mut node = 1usize;
        for i in (0..7).rev() {
            let bit = (width >> i) & 1 == 1;
            enc.encode_bit(&mut self.width_nodes[node], bit);
            node = (node << 1) | bit as usize;
        }
        if width > 1 {
            // Leading bit is implicit.
            enc.encode_direct(value & ((1u64 << (width - 1)) - 1), width - 1);
        }
    }

    /// Decodes a `u64`.
    ///
    /// # Errors
    /// [`CodecError::BadSymbol`] if the decoded width exceeds 64.
    pub fn decode(&mut self, dec: &mut RangeDecoder<'_>) -> Result<u64, CodecError> {
        let mut node = 1usize;
        for _ in 0..7 {
            let bit = dec.decode_bit(&mut self.width_nodes[node])?;
            node = (node << 1) | bit as usize;
        }
        let width = (node & 0x7F) as u32;
        if width > 64 {
            return Err(CodecError::BadSymbol {
                value: width as u64,
            });
        }
        Ok(match width {
            0 => 0,
            1 => 1,
            w => (1u64 << (w - 1)) | dec.decode_direct(w - 1)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_bits_compress_below_one_bit_each() {
        let mut enc = RangeEncoder::new();
        let mut m = BitModel::new();
        let n = 10_000;
        for i in 0..n {
            enc.encode_bit(&mut m, i % 100 == 0); // 1% ones
        }
        let packed = enc.finish();
        assert!(
            packed.len() < n / 8 / 4,
            "1%-skewed bits should beat 2 bits/byte: {} bytes",
            packed.len()
        );
        let mut dec = RangeDecoder::new(&packed).expect("stream");
        let mut m = BitModel::new();
        for i in 0..n {
            assert_eq!(dec.decode_bit(&mut m).expect("bit"), i % 100 == 0);
        }
    }

    #[test]
    fn direct_bits_round_trip() {
        let values = [
            (0u64, 1u32),
            (1, 1),
            (0xDEAD, 16),
            (0xFFFF_FFFF, 32),
            ((1 << 57) - 1, 57),
        ];
        let mut enc = RangeEncoder::new();
        for &(v, n) in &values {
            enc.encode_direct(v, n);
        }
        let packed = enc.finish();
        let mut dec = RangeDecoder::new(&packed).expect("stream");
        for &(v, n) in &values {
            assert_eq!(dec.decode_direct(n).expect("bits"), v);
        }
    }

    #[test]
    fn byte_model_round_trip_and_adapts() {
        let data: Vec<u8> = (0..5000)
            .map(|i| if i % 10 == 0 { 7 } else { 42 })
            .collect();
        let mut enc = RangeEncoder::new();
        let mut m = ByteModel::new();
        for &b in &data {
            m.encode(&mut enc, b);
        }
        let packed = enc.finish();
        assert!(
            packed.len() < data.len() / 4,
            "two-valued bytes: {}",
            packed.len()
        );
        let mut dec = RangeDecoder::new(&packed).expect("stream");
        let mut m = ByteModel::new();
        for &b in &data {
            assert_eq!(m.decode(&mut dec).expect("byte"), b);
        }
    }

    #[test]
    fn order1_model_beats_order0_on_markov_data() {
        // Alternating structure: next byte strongly depends on previous.
        let data: Vec<u8> = (0..8000)
            .map(|i| if i % 2 == 0 { b'A' } else { b'B' })
            .collect();
        let o0 = {
            let mut enc = RangeEncoder::new();
            let mut m = ByteModel::new();
            for &b in &data {
                m.encode(&mut enc, b);
            }
            enc.finish().len()
        };
        let o1 = {
            let mut enc = RangeEncoder::new();
            let mut m = Order1Model::new();
            for &b in &data {
                m.encode(&mut enc, b);
            }
            enc.finish().len()
        };
        assert!(o1 < o0, "order-1 {} vs order-0 {}", o1, o0);
        // Round trip.
        let mut enc = RangeEncoder::new();
        let mut m = Order1Model::new();
        for &b in &data {
            m.encode(&mut enc, b);
        }
        let packed = enc.finish();
        let mut dec = RangeDecoder::new(&packed).expect("stream");
        let mut m = Order1Model::new();
        for &b in &data {
            assert_eq!(m.decode(&mut dec).expect("byte"), b);
        }
    }

    #[test]
    fn uint_model_round_trip_edges() {
        let values = [
            0u64,
            1,
            2,
            3,
            127,
            128,
            1_000_000,
            u32::MAX as u64,
            u64::MAX,
        ];
        let mut enc = RangeEncoder::new();
        let mut m = UIntModel::new();
        for &v in &values {
            m.encode(&mut enc, v);
        }
        let packed = enc.finish();
        let mut dec = RangeDecoder::new(&packed).expect("stream");
        let mut m = UIntModel::new();
        for &v in &values {
            assert_eq!(m.decode(&mut dec).expect("value"), v);
        }
    }

    #[test]
    fn uint_model_small_values_are_cheap() {
        let mut enc = RangeEncoder::new();
        let mut m = UIntModel::new();
        for _ in 0..10_000 {
            m.encode(&mut enc, 1);
        }
        let packed = enc.finish();
        assert!(
            packed.len() < 400,
            "constant small ints: {} bytes",
            packed.len()
        );
    }

    #[test]
    fn truncated_preamble_rejected() {
        assert!(matches!(
            RangeDecoder::new(&[0, 1, 2]),
            Err(CodecError::UnexpectedEof)
        ));
    }

    #[test]
    fn mixed_models_interleave() {
        // Interleave bit, byte, direct and uint codings in one stream.
        let mut enc = RangeEncoder::new();
        let mut bm = BitModel::new();
        let mut by = ByteModel::new();
        let mut um = UIntModel::new();
        for i in 0..500u64 {
            enc.encode_bit(&mut bm, i % 3 == 0);
            by.encode(&mut enc, (i % 251) as u8);
            enc.encode_direct(i % 16, 4);
            um.encode(&mut enc, i * i);
        }
        let packed = enc.finish();
        let mut dec = RangeDecoder::new(&packed).expect("stream");
        let mut bm = BitModel::new();
        let mut by = ByteModel::new();
        let mut um = UIntModel::new();
        for i in 0..500u64 {
            assert_eq!(dec.decode_bit(&mut bm).expect("bit"), i % 3 == 0);
            assert_eq!(by.decode(&mut dec).expect("byte"), (i % 251) as u8);
            assert_eq!(dec.decode_direct(4).expect("direct"), i % 16);
            assert_eq!(um.decode(&mut dec).expect("uint"), i * i);
        }
    }
}
