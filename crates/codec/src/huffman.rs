//! Canonical, length-limited Huffman coding.
//!
//! Code lengths are computed with the package-merge algorithm (optimal
//! under a maximum-length constraint), then assigned canonically so a
//! decoder only needs the length array.

use crate::bitio::{BitReader, BitWriter};
use crate::error::CodecError;

/// Computes optimal code lengths for `freqs` under `max_len` using
/// package-merge. Zero-frequency symbols get length 0 (no code).
///
/// # Panics
/// Panics if `max_len` is 0 or if the alphabet cannot fit
/// (`freqs.len() > 2^max_len`).
pub fn build_lengths(freqs: &[u64], max_len: u8) -> Vec<u8> {
    assert!(max_len > 0, "max_len must be positive");
    let active: Vec<(usize, u64)> = freqs
        .iter()
        .copied()
        .enumerate()
        .filter(|&(_, f)| f > 0)
        .collect();
    let n = active.len();
    let mut lengths = vec![0u8; freqs.len()];
    match n {
        0 => return lengths,
        1 => {
            lengths[active[0].0] = 1;
            return lengths;
        }
        _ => {}
    }
    assert!(
        n as u64 <= 1u64 << max_len.min(63),
        "{} symbols cannot fit in {}-bit codes",
        n,
        max_len
    );
    // Package-merge. Each entry is (weight, bitmask-of-symbols as index
    // list). Alphabets here are small (<= ~300 symbols), so Vec<u32>
    // symbol lists are fine.
    #[derive(Clone)]
    struct Pkg {
        weight: u64,
        symbols: Vec<u32>,
    }
    let mut items: Vec<Pkg> = active
        .iter()
        .map(|&(i, f)| Pkg {
            weight: f,
            symbols: vec![i as u32],
        })
        .collect();
    items.sort_by_key(|p| p.weight);
    let mut current = items.clone();
    for _ in 1..max_len {
        // Package adjacent pairs of `current`.
        let mut packaged: Vec<Pkg> = Vec::with_capacity(current.len() / 2);
        let mut it = current.chunks_exact(2);
        for pair in &mut it {
            let mut symbols = pair[0].symbols.clone();
            symbols.extend_from_slice(&pair[1].symbols);
            packaged.push(Pkg {
                weight: pair[0].weight + pair[1].weight,
                symbols,
            });
        }
        // Merge with the original items (both sorted).
        let mut merged = Vec::with_capacity(items.len() + packaged.len());
        let (mut a, mut b) = (0, 0);
        while a < items.len() || b < packaged.len() {
            let take_item = match (items.get(a), packaged.get(b)) {
                (Some(x), Some(y)) => x.weight <= y.weight,
                (Some(_), None) => true,
                _ => false,
            };
            if take_item {
                merged.push(items[a].clone());
                a += 1;
            } else {
                merged.push(packaged[b].clone());
                b += 1;
            }
        }
        current = merged;
    }
    for pkg in current.iter().take(2 * n - 2) {
        for &s in &pkg.symbols {
            lengths[s as usize] += 1;
        }
    }
    debug_assert!(kraft_ok(&lengths), "package-merge produced invalid lengths");
    lengths
}

/// Whether the length array satisfies Kraft equality-or-less
/// (decodable) and is non-degenerate.
pub fn kraft_ok(lengths: &[u8]) -> bool {
    let mut sum = 0u128;
    let mut max = 0u8;
    for &l in lengths {
        if l > 0 {
            max = max.max(l);
            if l > 64 {
                return false;
            }
            sum += 1u128 << (64 - l as u32);
        }
    }
    max > 0 && sum <= 1u128 << 64
}

/// A canonical Huffman code table for encoding.
#[derive(Debug, Clone)]
pub struct Encoder {
    codes: Vec<(u32, u8)>, // (code, length) per symbol; length 0 = absent
}

impl Encoder {
    /// Builds the canonical codes from a length array.
    ///
    /// # Errors
    /// [`CodecError::BadCodeTable`] if the lengths are over-subscribed or
    /// all zero.
    pub fn from_lengths(lengths: &[u8]) -> Result<Encoder, CodecError> {
        if !kraft_ok(lengths) {
            return Err(CodecError::BadCodeTable);
        }
        let max_len = *lengths.iter().max().expect("non-empty by kraft_ok");
        let mut bl_count = vec![0u32; max_len as usize + 1];
        for &l in lengths {
            if l > 0 {
                bl_count[l as usize] += 1;
            }
        }
        // First canonical code of each length.
        let mut next_code = vec![0u32; max_len as usize + 2];
        let mut code = 0u32;
        for len in 1..=max_len as usize {
            code = (code + bl_count[len - 1]) << 1;
            next_code[len] = code;
        }
        let mut codes = vec![(0u32, 0u8); lengths.len()];
        for (sym, &l) in lengths.iter().enumerate() {
            if l > 0 {
                codes[sym] = (next_code[l as usize], l);
                next_code[l as usize] += 1;
            }
        }
        Ok(Encoder { codes })
    }

    /// Writes `symbol`'s code.
    ///
    /// # Panics
    /// Panics if the symbol has no code (zero frequency at build time).
    pub fn encode(&self, w: &mut BitWriter, symbol: usize) {
        let (code, len) = self.codes[symbol];
        assert!(len > 0, "symbol {} has no code", symbol);
        w.write_bits(code as u64, len as u32);
    }

    /// The `(code, length)` pair for a symbol (length 0 = absent).
    pub fn code(&self, symbol: usize) -> (u32, u8) {
        self.codes[symbol]
    }

    /// Total bits this table would use for the given frequency histogram.
    pub fn cost_bits(&self, freqs: &[u64]) -> u64 {
        freqs
            .iter()
            .zip(&self.codes)
            .map(|(&f, &(_, l))| f * l as u64)
            .sum()
    }
}

/// A canonical Huffman decoder built from the same length array.
#[derive(Debug, Clone)]
pub struct Decoder {
    /// Symbols sorted by (length, symbol).
    symbols: Vec<u32>,
    /// count[len] = number of codes with that length.
    counts: Vec<u32>,
    max_len: u8,
}

impl Decoder {
    /// Builds a decoder from a length array.
    ///
    /// # Errors
    /// [`CodecError::BadCodeTable`] if the lengths are invalid.
    pub fn from_lengths(lengths: &[u8]) -> Result<Decoder, CodecError> {
        if !kraft_ok(lengths) {
            return Err(CodecError::BadCodeTable);
        }
        let max_len = *lengths.iter().max().expect("non-empty");
        let mut counts = vec![0u32; max_len as usize + 1];
        let mut pairs: Vec<(u8, u32)> = Vec::new();
        for (sym, &l) in lengths.iter().enumerate() {
            if l > 0 {
                counts[l as usize] += 1;
                pairs.push((l, sym as u32));
            }
        }
        pairs.sort_unstable();
        Ok(Decoder {
            symbols: pairs.into_iter().map(|(_, s)| s).collect(),
            counts,
            max_len,
        })
    }

    /// Decodes one symbol.
    ///
    /// # Errors
    /// [`CodecError::UnexpectedEof`] on truncation,
    /// [`CodecError::BadSymbol`] if the bits match no code.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<usize, CodecError> {
        let mut code = 0u32;
        let mut first = 0u32;
        let mut index = 0u32;
        for len in 1..=self.max_len as usize {
            code = (code << 1) | r.read_bit()? as u32;
            let count = self.counts[len];
            if code.wrapping_sub(first) < count {
                return Ok(self.symbols[(index + (code - first)) as usize] as usize);
            }
            index += count;
            first = (first + count) << 1;
        }
        Err(CodecError::BadSymbol { value: code as u64 })
    }
}

/// Serializes a length array as 4-bit nibbles (requires `max_len <= 15`).
///
/// # Panics
/// Panics if any length exceeds 15.
pub fn write_lengths(w: &mut BitWriter, lengths: &[u8]) {
    for &l in lengths {
        assert!(l <= 15, "length {} exceeds nibble encoding", l);
        w.write_bits(l as u64, 4);
    }
}

/// Reads `n` nibble-encoded lengths.
///
/// # Errors
/// [`CodecError::UnexpectedEof`] on truncation.
pub fn read_lengths(r: &mut BitReader<'_>, n: usize) -> Result<Vec<u8>, CodecError> {
    (0..n).map(|_| Ok(r.read_bits(4)? as u8)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(freqs: &[u64], max_len: u8, message: &[usize]) {
        let lengths = build_lengths(freqs, max_len);
        let enc = Encoder::from_lengths(&lengths).expect("encoder");
        let dec = Decoder::from_lengths(&lengths).expect("decoder");
        let mut w = BitWriter::new();
        for &s in message {
            enc.encode(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in message {
            assert_eq!(dec.decode(&mut r).expect("symbol"), s);
        }
    }

    #[test]
    fn skewed_frequencies_get_short_codes() {
        let freqs = [1000u64, 10, 10, 1];
        let lengths = build_lengths(&freqs, 15);
        assert!(lengths[0] < lengths[3]);
        round_trip(&freqs, 15, &[0, 0, 1, 2, 3, 0, 0]);
    }

    #[test]
    fn uniform_frequencies_get_balanced_codes() {
        let freqs = [5u64; 8];
        let lengths = build_lengths(&freqs, 15);
        assert!(lengths.iter().all(|&l| l == 3));
    }

    #[test]
    fn single_symbol_alphabet() {
        let freqs = [0u64, 42, 0];
        let lengths = build_lengths(&freqs, 15);
        assert_eq!(lengths, vec![0, 1, 0]);
        round_trip(&freqs, 15, &[1, 1, 1]);
    }

    #[test]
    fn empty_alphabet_gives_no_codes() {
        let lengths = build_lengths(&[0u64; 5], 15);
        assert!(lengths.iter().all(|&l| l == 0));
        assert!(Encoder::from_lengths(&lengths).is_err());
    }

    #[test]
    fn length_limit_is_respected() {
        // Fibonacci-ish frequencies force deep trees without a limit.
        let freqs: Vec<u64> = {
            let mut v = vec![1u64, 1];
            for i in 2..20 {
                let next = v[i - 1] + v[i - 2];
                v.push(next);
            }
            v
        };
        for limit in [5u8, 8, 15] {
            let lengths = build_lengths(&freqs, limit);
            assert!(lengths.iter().all(|&l| l <= limit), "limit {}", limit);
            assert!(kraft_ok(&lengths));
        }
        round_trip(&freqs, 8, &(0..20).collect::<Vec<_>>());
    }

    #[test]
    fn package_merge_is_near_optimal() {
        // Entropy lower-bound sanity: cost within ~5% + 1 bit/symbol.
        let freqs = [900u64, 50, 25, 12, 6, 3, 2, 1, 1];
        let total: u64 = freqs.iter().sum();
        let entropy: f64 = freqs
            .iter()
            .filter(|&&f| f > 0)
            .map(|&f| {
                let p = f as f64 / total as f64;
                -(p.log2()) * f as f64
            })
            .sum();
        let lengths = build_lengths(&freqs, 15);
        let enc = Encoder::from_lengths(&lengths).expect("encoder");
        let cost = enc.cost_bits(&freqs) as f64;
        assert!(
            cost < entropy * 1.05 + total as f64,
            "cost {} entropy {}",
            cost,
            entropy
        );
    }

    #[test]
    fn oversubscribed_table_rejected() {
        // Three codes of length 1 cannot exist.
        assert!(Decoder::from_lengths(&[1, 1, 1]).is_err());
        assert!(Encoder::from_lengths(&[1, 1, 1]).is_err());
    }

    #[test]
    fn decode_rejects_dangling_code() {
        // Lengths {1} leaves code '1' unassigned.
        let lengths = [1u8, 0];
        let dec = Decoder::from_lengths(&lengths).expect("decoder");
        let bytes = [0xFFu8];
        let mut r = BitReader::new(&bytes);
        assert!(matches!(
            dec.decode(&mut r),
            Err(CodecError::BadSymbol { .. })
        ));
    }

    #[test]
    fn lengths_serialize_round_trip() {
        let lengths = build_lengths(&[10u64, 4, 4, 2, 1, 0, 7], 15);
        let mut w = BitWriter::new();
        write_lengths(&mut w, &lengths);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let got = read_lengths(&mut r, lengths.len()).expect("read");
        assert_eq!(got, lengths);
    }

    #[test]
    fn large_alphabet_round_trip() {
        // 286-symbol deflate-like alphabet with a long-tail distribution.
        let freqs: Vec<u64> = (0..286u64).map(|i| 1 + (286 - i) * (i % 7 + 1)).collect();
        let lengths = build_lengths(&freqs, 15);
        assert!(kraft_ok(&lengths));
        let msg: Vec<usize> = (0..286).collect();
        round_trip(&freqs, 15, &msg);
    }
}
