//! CRC-32 (IEEE 802.3 polynomial), table-driven.

/// Reflected polynomial for CRC-32/ISO-HDLC (the gzip/zip CRC).
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// Streaming CRC-32 state.
///
/// ```
/// use faaspipe_codec::checksum::Crc32;
/// let mut crc = Crc32::new();
/// crc.update(b"123456789");
/// assert_eq!(crc.finish(), 0xCBF43926); // the classic check value
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Creates a fresh CRC state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        let mut c = self.state;
        for &b in data {
            c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// Returns the final checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414FA339
        );
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data = b"hello cruel world";
        let mut c = Crc32::new();
        c.update(&data[..5]);
        c.update(&data[5..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"\x00\x00\x00\x00");
        let b = crc32(b"\x00\x00\x00\x01");
        assert_ne!(a, b);
    }
}
