//! A DEFLATE-shaped LZ77 + canonical-Huffman container.
//!
//! This is the workspace's **gzip stand-in**: the same machinery as
//! DEFLATE (hash-chain LZ77 over a 32 KiB window, two Huffman alphabets
//! with extra-bits length/distance buckets, stored-block fallback, CRC-32
//! trailer) in a simpler container. It is the baseline for the paper's
//! "METHCOMP compresses ~10× better than gzip" claim, and the codec the
//! pipeline's encode stage runs when asked for a general-purpose format.
//!
//! Format:
//!
//! ```text
//! magic "FZ01" | varint original_len | blocks... | crc32 (4 bytes LE)
//! block := 1 bit final | 1 bit type (0 stored, 1 huffman) | payload
//! stored  := align; varint len; raw bytes
//! huffman := 286+30 nibble code lengths; symbols...; 256 = end of block
//! ```

use crate::bitio::{BitReader, BitWriter};
use crate::checksum::crc32;
use crate::error::CodecError;
use crate::huffman::{self, Decoder, Encoder};
use crate::lz77::{self, Lz77Config, Token};
use crate::varint;

const MAGIC: &[u8; 4] = b"FZ01";
const BLOCK_INPUT: usize = 128 * 1024;
const LITLEN_SYMS: usize = 286; // 0-255 literals, 256 EOB, 257-285 lengths
const DIST_SYMS: usize = 30;
const EOB: usize = 256;

/// DEFLATE length-code base values for symbols 257..=285.
const LEN_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
/// Extra bits per length code.
const LEN_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
/// DEFLATE distance-code base values for symbols 0..=29.
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
/// Extra bits per distance code.
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

fn length_symbol(len: u16) -> (usize, u8, u16) {
    debug_assert!((3..=258).contains(&len));
    let mut sym = 0;
    for (i, &base) in LEN_BASE.iter().enumerate() {
        if len >= base {
            sym = i;
        } else {
            break;
        }
    }
    (257 + sym, LEN_EXTRA[sym], len - LEN_BASE[sym])
}

fn dist_symbol(dist: u16) -> (usize, u8, u16) {
    debug_assert!(dist >= 1);
    let mut sym = 0;
    for (i, &base) in DIST_BASE.iter().enumerate() {
        if dist >= base {
            sym = i;
        } else {
            break;
        }
    }
    (sym, DIST_EXTRA[sym], dist - DIST_BASE[sym])
}

/// Compresses `data` with default effort.
pub fn compress(data: &[u8]) -> Vec<u8> {
    compress_with(data, &Lz77Config::default())
}

/// Compresses `data` with the fast preset (like `gzip -1`).
pub fn compress_fast(data: &[u8]) -> Vec<u8> {
    compress_with(data, &Lz77Config::fast())
}

/// Compresses `data` with the best-ratio preset (like `gzip -9`).
pub fn compress_best(data: &[u8]) -> Vec<u8> {
    compress_with(data, &Lz77Config::best())
}

/// Compresses `data` with a specific LZ77 configuration.
pub fn compress_with(data: &[u8], cfg: &Lz77Config) -> Vec<u8> {
    let mut w = BitWriter::new();
    w.write_bytes(MAGIC);
    let mut header = Vec::new();
    varint::write_u64(&mut header, data.len() as u64);
    w.write_bytes(&header);

    if data.is_empty() {
        w.write_bit(true); // final
        w.write_bit(false); // stored
        w.align();
        let mut lenbuf = Vec::new();
        varint::write_u64(&mut lenbuf, 0);
        w.write_bytes(&lenbuf);
    } else {
        let blocks: Vec<&[u8]> = data.chunks(BLOCK_INPUT).collect();
        for (bi, block) in blocks.iter().enumerate() {
            let is_final = bi == blocks.len() - 1;
            write_block(&mut w, block, is_final, cfg);
        }
    }
    w.align();
    let mut out = w.finish();
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out
}

fn write_block(w: &mut BitWriter, block: &[u8], is_final: bool, cfg: &Lz77Config) {
    let tokens = lz77::tokenize(block, cfg);
    // Histogram both alphabets.
    let mut lit_freq = vec![0u64; LITLEN_SYMS];
    let mut dist_freq = vec![0u64; DIST_SYMS];
    lit_freq[EOB] = 1;
    let mut extra_bits = 0u64;
    for t in &tokens {
        match *t {
            Token::Literal(b) => lit_freq[b as usize] += 1,
            Token::Match { len, dist } => {
                let (ls, le, _) = length_symbol(len);
                let (ds, de, _) = dist_symbol(dist);
                lit_freq[ls] += 1;
                dist_freq[ds] += 1;
                extra_bits += le as u64 + de as u64;
            }
        }
    }
    let lit_lengths = huffman::build_lengths(&lit_freq, 15);
    let dist_lengths = huffman::build_lengths(&dist_freq, 15);
    let lit_enc = Encoder::from_lengths(&lit_lengths).expect("non-empty litlen alphabet");
    let dist_enc = Encoder::from_lengths(&dist_lengths).ok(); // may be empty

    // Estimate whether the Huffman block actually wins over stored.
    let header_bits = 4 * (LITLEN_SYMS + DIST_SYMS) as u64;
    let body_bits = lit_enc.cost_bits(&lit_freq)
        + dist_enc.as_ref().map_or(0, |e| e.cost_bits(&dist_freq))
        + extra_bits;
    let huff_bits = header_bits + body_bits;
    let stored_bits = (block.len() as u64 + 10) * 8;

    w.write_bit(is_final);
    if huff_bits >= stored_bits {
        w.write_bit(false); // stored
        w.align();
        let mut lenbuf = Vec::new();
        varint::write_u64(&mut lenbuf, block.len() as u64);
        w.write_bytes(&lenbuf);
        w.write_bytes(block);
        return;
    }
    w.write_bit(true); // huffman
    huffman::write_lengths(w, &lit_lengths);
    huffman::write_lengths(w, &dist_lengths);
    for t in &tokens {
        match *t {
            Token::Literal(b) => lit_enc.encode(w, b as usize),
            Token::Match { len, dist } => {
                let (ls, le, lv) = length_symbol(len);
                let (ds, de, dv) = dist_symbol(dist);
                lit_enc.encode(w, ls);
                if le > 0 {
                    w.write_bits(lv as u64, le as u32);
                }
                dist_enc
                    .as_ref()
                    .expect("dist alphabet exists when matches do")
                    .encode(w, ds);
                if de > 0 {
                    w.write_bits(dv as u64, de as u32);
                }
            }
        }
    }
    lit_enc.encode(w, EOB);
}

/// Decompresses a stream produced by [`compress`].
///
/// # Errors
/// Any [`CodecError`]: bad magic, truncation, invalid code tables, bad
/// back-references, length or checksum mismatches.
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut r = BitReader::new(input);
    let magic = r.read_bytes(4)?;
    if magic != MAGIC {
        return Err(CodecError::BadHeader { what: "magic" });
    }
    // Original length varint (byte-aligned).
    let mut declared = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = r.read_bytes(1)?[0];
        declared |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            break;
        }
        shift += 7;
        if shift > 63 {
            return Err(CodecError::LengthOverflow { declared });
        }
    }
    if declared > (1 << 40) {
        return Err(CodecError::LengthOverflow { declared });
    }
    let mut out: Vec<u8> = Vec::with_capacity(declared as usize);
    loop {
        let is_final = r.read_bit()?;
        let is_huff = r.read_bit()?;
        if !is_huff {
            // Stored block.
            let mut len = 0u64;
            let mut shift = 0u32;
            loop {
                let byte = r.read_bytes(1)?[0];
                len |= ((byte & 0x7F) as u64) << shift;
                if byte & 0x80 == 0 {
                    break;
                }
                shift += 7;
                if shift > 63 {
                    return Err(CodecError::LengthOverflow { declared: len });
                }
            }
            if out.len() as u64 + len > declared {
                return Err(CodecError::LengthOverflow { declared: len });
            }
            out.extend_from_slice(r.read_bytes(len as usize)?);
        } else {
            let lit_lengths = huffman::read_lengths(&mut r, LITLEN_SYMS)?;
            let dist_lengths = huffman::read_lengths(&mut r, DIST_SYMS)?;
            let lit_dec = Decoder::from_lengths(&lit_lengths)?;
            let dist_dec = Decoder::from_lengths(&dist_lengths).ok();
            loop {
                let sym = lit_dec.decode(&mut r)?;
                if sym == EOB {
                    break;
                }
                if sym < 256 {
                    if out.len() as u64 + 1 > declared {
                        return Err(CodecError::LengthOverflow { declared });
                    }
                    out.push(sym as u8);
                    continue;
                }
                let li = sym - 257;
                if li >= LEN_BASE.len() {
                    return Err(CodecError::BadSymbol { value: sym as u64 });
                }
                let len = LEN_BASE[li] as usize + r.read_bits(LEN_EXTRA[li] as u32)? as usize;
                let dist_dec = dist_dec
                    .as_ref()
                    .ok_or(CodecError::BadHeader { what: "dist table" })?;
                let ds = dist_dec.decode(&mut r)?;
                let dist = DIST_BASE[ds] as usize + r.read_bits(DIST_EXTRA[ds] as u32)? as usize;
                if dist == 0 || dist > out.len() {
                    return Err(CodecError::BadDistance {
                        distance: dist,
                        produced: out.len(),
                    });
                }
                if out.len() as u64 + len as u64 > declared {
                    return Err(CodecError::LengthOverflow { declared });
                }
                let start = out.len() - dist;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
        if is_final {
            break;
        }
    }
    if out.len() as u64 != declared {
        return Err(CodecError::LengthOverflow { declared });
    }
    let stored_crc = {
        let bytes = r.read_bytes(4)?;
        u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]])
    };
    let actual = crc32(&out);
    if stored_crc != actual {
        return Err(CodecError::ChecksumMismatch {
            expected: stored_crc,
            actual,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> usize {
        let packed = compress(data);
        let unpacked = decompress(&packed).expect("round trip");
        assert_eq!(unpacked, data);
        packed.len()
    }

    #[test]
    fn empty_input() {
        assert!(round_trip(b"") > 0);
    }

    #[test]
    fn small_inputs() {
        for data in [&b"a"[..], b"ab", b"abc", b"hello world"] {
            round_trip(data);
        }
    }

    #[test]
    fn repetitive_text_compresses_hard() {
        let data = b"to be or not to be, that is the question. ".repeat(200);
        let packed_len = round_trip(&data);
        assert!(
            packed_len * 10 < data.len(),
            "expected >10x on repetitive text: {} vs {}",
            packed_len,
            data.len()
        );
    }

    #[test]
    fn random_data_stays_near_original_size() {
        let mut x = 0xDEADBEEFu32;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 8) as u8
            })
            .collect();
        let packed_len = round_trip(&data);
        assert!(
            packed_len < data.len() + data.len() / 8 + 64,
            "incompressible data must not blow up: {}",
            packed_len
        );
    }

    #[test]
    fn multi_block_inputs() {
        // > 2 blocks of 128 KiB.
        let data: Vec<u8> = (0..300_000usize).map(|i| (i / 100) as u8).collect();
        round_trip(&data);
    }

    #[test]
    fn length_symbol_buckets() {
        assert_eq!(length_symbol(3), (257, 0, 0));
        assert_eq!(length_symbol(10), (264, 0, 0));
        assert_eq!(length_symbol(11), (265, 1, 0));
        assert_eq!(length_symbol(12), (265, 1, 1));
        assert_eq!(length_symbol(258), (285, 0, 0));
    }

    #[test]
    fn dist_symbol_buckets() {
        assert_eq!(dist_symbol(1), (0, 0, 0));
        assert_eq!(dist_symbol(4), (3, 0, 0));
        assert_eq!(dist_symbol(5), (4, 1, 0));
        assert_eq!(dist_symbol(6), (4, 1, 1));
        assert_eq!(dist_symbol(24577), (29, 13, 0));
        assert_eq!(dist_symbol(32768), (29, 13, 8191));
    }

    #[test]
    fn effort_levels_round_trip_and_order() {
        let data = b"compression effort levels change ratio not correctness ".repeat(300);
        let fast = compress_fast(&data);
        let default = compress(&data);
        let best = compress_best(&data);
        for packed in [&fast, &default, &best] {
            assert_eq!(decompress(packed).expect("round trip"), data);
        }
        assert!(best.len() <= default.len());
        assert!(default.len() <= fast.len());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut packed = compress(b"hi");
        packed[0] = b'X';
        assert!(matches!(
            decompress(&packed),
            Err(CodecError::BadHeader { what: "magic" })
        ));
    }

    #[test]
    fn corrupted_payload_fails_checksum_or_structure() {
        let data = b"some moderately compressible payload ".repeat(50);
        let packed = compress(&data);
        // Flip a bit somewhere in the middle of the payload.
        let mut corrupt = packed.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x40;
        assert!(decompress(&corrupt).is_err());
    }

    #[test]
    fn truncated_stream_errors() {
        let packed = compress(b"truncate me please, thank you very much");
        for cut in [1usize, 5, packed.len() / 2, packed.len() - 1] {
            assert!(decompress(&packed[..cut]).is_err(), "cut {}", cut);
        }
    }

    #[test]
    fn declared_length_must_match() {
        let mut packed = compress(b"abc");
        // Magic is 4 bytes; the varint length follows. 3 -> claim 4.
        assert_eq!(packed[4], 3);
        packed[4] = 4;
        assert!(decompress(&packed).is_err());
    }
}
