//! LEB128 variable-length integers and zigzag signed mapping.

use crate::error::CodecError;

/// Appends `value` as an unsigned LEB128 varint.
///
/// ```
/// let mut buf = Vec::new();
/// faaspipe_codec::varint::write_u64(&mut buf, 300);
/// let (v, used) = faaspipe_codec::varint::read_u64(&buf).unwrap();
/// assert_eq!((v, used), (300, 2));
/// ```
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint, returning `(value, bytes_consumed)`.
///
/// # Errors
/// [`CodecError::UnexpectedEof`] if the input ends mid-varint and
/// [`CodecError::LengthOverflow`] if the encoding exceeds 10 bytes or
/// overflows 64 bits.
pub fn read_u64(input: &[u8]) -> Result<(u64, usize), CodecError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in input.iter().enumerate() {
        if i >= 10 {
            return Err(CodecError::LengthOverflow { declared: value });
        }
        let payload = (byte & 0x7F) as u64;
        if shift == 63 && payload > 1 {
            return Err(CodecError::LengthOverflow { declared: value });
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    Err(CodecError::UnexpectedEof)
}

/// Zigzag-maps a signed integer to unsigned (small magnitudes stay small).
pub fn zigzag(v: i64) -> u64 {
    (v.wrapping_shl(1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a signed integer as zigzag + LEB128.
pub fn write_i64(out: &mut Vec<u8>, value: i64) {
    write_u64(out, zigzag(value));
}

/// Reads a signed zigzag + LEB128 integer.
///
/// # Errors
/// Same conditions as [`read_u64`].
pub fn read_i64(input: &[u8]) -> Result<(i64, usize), CodecError> {
    let (raw, used) = read_u64(input)?;
    Ok((unzigzag(raw), used))
}

/// A cursor for reading consecutive varints out of a slice.
#[derive(Debug, Clone)]
pub struct VarintReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> VarintReader<'a> {
    /// Creates a cursor at the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        VarintReader { data, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Whether all input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.data.len()
    }

    /// Reads the next unsigned varint.
    ///
    /// # Errors
    /// Same conditions as [`read_u64`].
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let (v, used) = read_u64(&self.data[self.pos..])?;
        self.pos += used;
        Ok(v)
    }

    /// Reads the next signed varint.
    ///
    /// # Errors
    /// Same conditions as [`read_u64`].
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        let (v, used) = read_i64(&self.data[self.pos..])?;
        self.pos += used;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trip_edges() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let (got, used) = read_u64(&buf).expect("valid varint");
            assert_eq!(got, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn i64_round_trip_edges() {
        for v in [0i64, 1, -1, 63, -64, i32::MIN as i64, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let (got, used) = read_i64(&buf).expect("valid varint");
            assert_eq!(got, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn zigzag_small_magnitudes_stay_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(unzigzag(zigzag(-123456)), -123456);
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 1_000_000);
        let err = read_u64(&buf[..buf.len() - 1]).expect_err("truncated");
        assert_eq!(err, CodecError::UnexpectedEof);
    }

    #[test]
    fn overlong_encoding_rejected() {
        let buf = [0x80u8; 11];
        assert!(matches!(
            read_u64(&buf),
            Err(CodecError::LengthOverflow { .. })
        ));
        // 10-byte encoding overflowing 64 bits.
        let mut buf = vec![0xFFu8; 9];
        buf.push(0x7F);
        assert!(matches!(
            read_u64(&buf),
            Err(CodecError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn cursor_reads_sequence() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 7);
        write_i64(&mut buf, -9);
        write_u64(&mut buf, 1 << 40);
        let mut r = VarintReader::new(&buf);
        assert_eq!(r.u64().expect("first"), 7);
        assert_eq!(r.i64().expect("second"), -9);
        assert_eq!(r.u64().expect("third"), 1 << 40);
        assert!(r.is_empty());
        assert_eq!(r.position(), buf.len());
    }
}
