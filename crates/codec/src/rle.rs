//! Byte-wise run-length encoding: `(value, varint run-length)` pairs.
//!
//! Effective on the low-cardinality columnar streams METHCOMP produces
//! (chromosome ids, strands, interval widths).

use crate::error::CodecError;
use crate::varint;

/// Encodes `data` as `(byte, varint run)` pairs.
///
/// ```
/// let packed = faaspipe_codec::rle::compress(b"aaaabbc");
/// let unpacked = faaspipe_codec::rle::decompress(&packed, 1 << 20).unwrap();
/// assert_eq!(unpacked, b"aaaabbc");
/// ```
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < data.len() {
        let b = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == b {
            run += 1;
        }
        out.push(b);
        varint::write_u64(&mut out, run as u64);
        i += run;
    }
    out
}

/// Decodes an RLE stream produced by [`compress`].
///
/// # Errors
/// [`CodecError::UnexpectedEof`] on truncation and
/// [`CodecError::LengthOverflow`] if the declared output exceeds
/// `max_len` (guarding against decompression bombs).
pub fn decompress(data: &[u8], max_len: usize) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < data.len() {
        let b = data[pos];
        pos += 1;
        let (run, used) = varint::read_u64(&data[pos..])?;
        pos += used;
        if run == 0 || out.len() as u64 + run > max_len as u64 {
            return Err(CodecError::LengthOverflow { declared: run });
        }
        out.resize(out.len() + run as usize, b);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_cases() {
        for case in [
            &b""[..],
            b"a",
            b"aaaa",
            b"abab",
            b"aaabbbcccd",
            b"\x00\x00\xFF\xFF\xFF",
        ] {
            let packed = compress(case);
            let unpacked = decompress(&packed, 1 << 20).expect("round trip");
            assert_eq!(unpacked, case);
        }
    }

    #[test]
    fn long_runs_compress_well() {
        let data = vec![7u8; 100_000];
        let packed = compress(&data);
        assert!(packed.len() <= 4, "one pair: value + varint run");
        assert_eq!(decompress(&packed, 1 << 20).expect("ok"), data);
    }

    #[test]
    fn alternating_bytes_expand_gracefully() {
        let data: Vec<u8> = (0..1000).map(|i| (i % 2) as u8).collect();
        let packed = compress(&data);
        assert_eq!(packed.len(), 2000); // pair per byte
        assert_eq!(decompress(&packed, 1 << 20).expect("ok"), data);
    }

    #[test]
    fn bomb_guard_trips() {
        let mut packed = Vec::new();
        packed.push(0u8);
        varint::write_u64(&mut packed, 1 << 40);
        assert!(matches!(
            decompress(&packed, 1 << 20),
            Err(CodecError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn zero_run_is_invalid() {
        let packed = vec![0u8, 0u8]; // value 0, run 0
        assert!(matches!(
            decompress(&packed, 10),
            Err(CodecError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn truncated_run_errors() {
        let packed = vec![0u8]; // value without run
        assert_eq!(decompress(&packed, 10), Err(CodecError::UnexpectedEof));
    }
}
