//! MSB-first bit-level I/O over byte buffers.

use crate::error::CodecError;

/// Writes bits MSB-first into a growable byte vector.
///
/// ```
/// use faaspipe_codec::bitio::{BitReader, BitWriter};
///
/// # fn main() -> Result<(), faaspipe_codec::CodecError> {
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_bits(0xFF, 8);
/// let bytes = w.finish();
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(r.read_bits(3)?, 0b101);
/// assert_eq!(r.read_bits(8)?, 0xFF);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Number of whole bytes emitted so far (excluding buffered bits).
    pub fn byte_len(&self) -> usize {
        self.out.len()
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.out.len() as u64 * 8 + self.nbits as u64
    }

    /// Appends the low `count` bits of `value`, most significant first.
    ///
    /// # Panics
    /// Panics if `count > 57` (the accumulator guarantee) or if `value`
    /// has bits above `count`.
    pub fn write_bits(&mut self, value: u64, count: u32) {
        assert!(count <= 57, "write_bits supports at most 57 bits at once");
        debug_assert!(
            count == 64 || value < (1u64 << count),
            "value {:#x} exceeds {} bits",
            value,
            count
        );
        self.acc = (self.acc << count) | value;
        self.nbits += count;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.out.push((self.acc >> self.nbits) as u8);
        }
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u64, 1);
    }

    /// Pads with zero bits to a byte boundary.
    pub fn align(&mut self) {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.write_bits(0, pad);
        }
    }

    /// Appends whole bytes (aligning first).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.align();
        self.out.extend_from_slice(bytes);
    }

    /// Finishes the stream, padding the final byte with zeros.
    pub fn finish(mut self) -> Vec<u8> {
        self.align();
        self.out
    }
}

/// Reads bits MSB-first from a byte slice. See [`BitWriter`] for a
/// round-trip example.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize, // next byte index
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    /// Bits still available.
    pub fn remaining_bits(&self) -> u64 {
        (self.data.len() - self.pos) as u64 * 8 + self.nbits as u64
    }

    /// Reads `count` bits, most significant first.
    ///
    /// # Errors
    /// [`CodecError::UnexpectedEof`] if fewer than `count` bits remain.
    ///
    /// # Panics
    /// Panics if `count > 57`.
    pub fn read_bits(&mut self, count: u32) -> Result<u64, CodecError> {
        assert!(count <= 57, "read_bits supports at most 57 bits at once");
        while self.nbits < count {
            let byte = *self.data.get(self.pos).ok_or(CodecError::UnexpectedEof)?;
            self.pos += 1;
            self.acc = (self.acc << 8) | byte as u64;
            self.nbits += 8;
        }
        self.nbits -= count;
        let value = (self.acc >> self.nbits) & ((1u64 << count) - 1);
        Ok(if count == 0 { 0 } else { value })
    }

    /// Reads one bit.
    ///
    /// # Errors
    /// [`CodecError::UnexpectedEof`] at end of input.
    pub fn read_bit(&mut self) -> Result<bool, CodecError> {
        Ok(self.read_bits(1)? == 1)
    }

    /// Discards buffered bits up to the next byte boundary.
    pub fn align(&mut self) {
        self.nbits -= self.nbits % 8;
    }

    /// Reads `n` whole bytes (aligning first).
    ///
    /// # Errors
    /// [`CodecError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.align();
        // Serve buffered whole bytes back out of `data` by rewinding.
        let buffered = (self.nbits / 8) as usize;
        let start = self.pos - buffered;
        self.nbits = 0;
        self.acc = 0;
        if start + n > self.data.len() {
            return Err(CodecError::UnexpectedEof);
        }
        self.pos = start + n;
        Ok(&self.data[start..start + n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_round_trip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        let bytes = w.finish();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().expect("bit available"), b);
        }
    }

    #[test]
    fn multi_bit_values_round_trip() {
        let values = [
            (0u64, 1u32),
            (1, 1),
            (5, 3),
            (255, 8),
            (1023, 10),
            (0x1FFFFF, 21),
            (42, 57),
        ];
        let mut w = BitWriter::new();
        for &(v, n) in &values {
            w.write_bits(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &values {
            assert_eq!(r.read_bits(n).expect("bits available"), v);
        }
    }

    #[test]
    fn align_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.align();
        w.write_bits(0xAB, 8);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1000_0000, 0xAB]);
    }

    #[test]
    fn write_bytes_aligns_first() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        w.write_bytes(&[0x12, 0x34]);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1000_0000, 0x12, 0x34]);
        let mut r = BitReader::new(&bytes);
        assert!(r.read_bit().expect("bit"));
        assert_eq!(r.read_bytes(2).expect("bytes"), &[0x12, 0x34]);
    }

    #[test]
    fn eof_is_detected() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8).expect("one byte"), 0xFF);
        assert_eq!(r.read_bits(1), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn read_bytes_after_bits_rewinds_to_boundary() {
        // Write 4 bits then 2 bytes; reader consumes 4 bits, aligns, and
        // must see exactly those 2 bytes.
        let mut w = BitWriter::new();
        w.write_bits(0xF, 4);
        w.write_bytes(&[0xDE, 0xAD]);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(4).expect("bits"), 0xF);
        assert_eq!(r.read_bytes(2).expect("bytes"), &[0xDE, 0xAD]);
        assert_eq!(r.remaining_bits(), 0);
    }

    #[test]
    fn bit_len_tracks_progress() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0b101, 3);
        assert_eq!(w.bit_len(), 3);
        w.write_bits(0, 13);
        assert_eq!(w.bit_len(), 16);
        assert_eq!(w.byte_len(), 2);
    }

    #[test]
    fn zero_bit_read_is_zero() {
        let mut r = BitReader::new(&[]);
        assert_eq!(r.read_bits(0).expect("zero bits always available"), 0);
    }
}
