//! LZ77 match finding with hash chains and one-step lazy matching
//! (the DEFLATE strategy) over a 32 KiB sliding window.

/// Maximum back-reference distance.
pub const MAX_DISTANCE: usize = 32 * 1024;
/// Minimum match length worth emitting.
pub const MIN_MATCH: usize = 3;
/// Maximum match length.
pub const MAX_MATCH: usize = 258;

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;
const NO_POS: u32 = u32::MAX;

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A literal byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes from `dist` bytes behind.
    Match {
        /// Match length in `[MIN_MATCH, MAX_MATCH]`.
        len: u16,
        /// Distance in `[1, MAX_DISTANCE]`.
        dist: u16,
    },
}

/// Match-finder effort knobs.
#[derive(Debug, Clone, Copy)]
pub struct Lz77Config {
    /// Maximum hash-chain positions probed per match attempt.
    pub max_chain: usize,
    /// Stop searching once a match of this length is found.
    pub good_enough: usize,
    /// Enable one-step lazy matching.
    pub lazy: bool,
}

impl Default for Lz77Config {
    fn default() -> Self {
        Lz77Config {
            max_chain: 128,
            good_enough: 96,
            lazy: true,
        }
    }
}

impl Lz77Config {
    /// Fast preset: short chains, greedy matching (like `gzip -1`).
    pub fn fast() -> Lz77Config {
        Lz77Config {
            max_chain: 8,
            good_enough: 16,
            lazy: false,
        }
    }

    /// Best-ratio preset: deep chains, lazy matching (like `gzip -9`).
    pub fn best() -> Lz77Config {
        Lz77Config {
            max_chain: 1024,
            good_enough: MAX_MATCH,
            lazy: true,
        }
    }
}

fn hash3(data: &[u8], i: usize) -> usize {
    let v = u32::from(data[i]) | u32::from(data[i + 1]) << 8 | u32::from(data[i + 2]) << 16;
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

fn match_len(data: &[u8], a: usize, b: usize, max: usize) -> usize {
    let mut n = 0;
    while n < max && data[a + n] == data[b + n] {
        n += 1;
    }
    n
}

/// Tokenizes `data` with the given configuration.
///
/// The output, expanded by [`expand`], reproduces `data` exactly.
pub fn tokenize(data: &[u8], cfg: &Lz77Config) -> Vec<Token> {
    let n = data.len();
    let mut out = Vec::new();
    if n < MIN_MATCH {
        out.extend(data.iter().map(|&b| Token::Literal(b)));
        return out;
    }
    let mut head = vec![NO_POS; HASH_SIZE];
    let mut prev = vec![NO_POS; n];

    let insert = |head: &mut [u32], prev: &mut [u32], i: usize| {
        if i + MIN_MATCH <= n {
            let h = hash3(data, i);
            prev[i] = head[h];
            head[h] = i as u32;
        }
    };

    let find = |head: &[u32], prev: &[u32], i: usize| -> Option<(usize, usize)> {
        if i + MIN_MATCH > n {
            return None;
        }
        let max = MAX_MATCH.min(n - i);
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let mut cand = head[hash3(data, i)];
        let mut chain = cfg.max_chain;
        while cand != NO_POS && chain > 0 {
            let c = cand as usize;
            if c >= i {
                // Defensive: never match a position against itself.
                cand = prev[c];
                continue;
            }
            if i - c > MAX_DISTANCE {
                break;
            }
            let l = match_len(data, c, i, max);
            if l > best_len {
                best_len = l;
                best_dist = i - c;
                if l >= cfg.good_enough || l == max {
                    break;
                }
            }
            cand = prev[c];
            chain -= 1;
        }
        if best_len >= MIN_MATCH {
            Some((best_len, best_dist))
        } else {
            None
        }
    };

    let mut i = 0usize;
    while i < n {
        let here = find(&head, &prev, i);
        match here {
            None => {
                out.push(Token::Literal(data[i]));
                insert(&mut head, &mut prev, i);
                i += 1;
            }
            Some((len, dist)) => {
                // Lazy: if the next position has a strictly longer match,
                // emit a literal now and take the longer match next round.
                let mut inserted_i = false;
                let mut defer = false;
                if cfg.lazy && i + 1 < n && len < MAX_MATCH {
                    insert(&mut head, &mut prev, i);
                    inserted_i = true;
                    if let Some((next_len, _)) = find(&head, &prev, i + 1) {
                        defer = next_len > len;
                    }
                }
                if defer {
                    out.push(Token::Literal(data[i]));
                    i += 1; // position i already inserted above
                    continue;
                }
                if !inserted_i {
                    insert(&mut head, &mut prev, i);
                }
                out.push(Token::Match {
                    len: len as u16,
                    dist: dist as u16,
                });
                for j in i + 1..i + len {
                    insert(&mut head, &mut prev, j);
                }
                i += len;
            }
        }
    }
    out
}

/// Expands tokens back into bytes.
///
/// # Panics
/// Panics if a back-reference points before the start of the output
/// (corrupt token stream); the container decoder validates before calling.
pub fn expand(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for &t in tokens {
        match t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let dist = dist as usize;
                let len = len as usize;
                assert!(dist >= 1 && dist <= out.len(), "bad distance");
                let start = out.len() - dist;
                // Overlapping copies are the point (run encoding).
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8], cfg: &Lz77Config) {
        let tokens = tokenize(data, cfg);
        assert_eq!(expand(&tokens), data);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        for data in [&b""[..], b"a", b"ab", b"abc"] {
            round_trip(data, &Lz77Config::default());
        }
    }

    #[test]
    fn repetitive_input_uses_matches() {
        let data = b"abcabcabcabcabcabc";
        let tokens = tokenize(data, &Lz77Config::default());
        assert!(
            tokens.iter().any(|t| matches!(t, Token::Match { .. })),
            "expected at least one match: {:?}",
            tokens
        );
        assert_eq!(expand(&tokens), data);
    }

    #[test]
    fn run_of_one_byte_overlapping_copy() {
        let data = vec![7u8; 1000];
        let tokens = tokenize(&data, &Lz77Config::default());
        assert!(
            tokens.len() < 20,
            "run should collapse, got {}",
            tokens.len()
        );
        assert_eq!(expand(&tokens), data);
    }

    #[test]
    fn incompressible_input_round_trips() {
        // Pseudo-random bytes: few/no matches, must still be lossless.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        round_trip(&data, &Lz77Config::default());
    }

    #[test]
    fn long_range_matches_within_window() {
        let mut data = vec![0u8; 0];
        let chunk: Vec<u8> = (0..=255u8).cycle().take(1024).collect();
        data.extend_from_slice(&chunk);
        data.extend(std::iter::repeat_n(9u8, 20_000));
        data.extend_from_slice(&chunk); // 20 KiB back, within window
        round_trip(&data, &Lz77Config::default());
    }

    #[test]
    fn matches_do_not_cross_window() {
        // Same prefix repeated beyond MAX_DISTANCE: distances must stay
        // within the window.
        let mut data = b"0123456789abcdef".repeat(3000); // 48 KiB
        data.extend_from_slice(b"0123456789abcdef");
        let tokens = tokenize(&data, &Lz77Config::default());
        for t in &tokens {
            if let Token::Match { dist, .. } = t {
                assert!((*dist as usize) <= MAX_DISTANCE);
            }
        }
        assert_eq!(expand(&tokens), data);
    }

    #[test]
    fn greedy_config_round_trips() {
        let cfg = Lz77Config {
            lazy: false,
            ..Lz77Config::default()
        };
        let data = b"the quick brown fox the quick brown dog the quick".repeat(10);
        round_trip(&data, &cfg);
    }

    #[test]
    fn lazy_matching_not_worse_than_greedy() {
        let data = b"aabcaabcabcabcd".repeat(100);
        let lazy = tokenize(&data, &Lz77Config::default());
        let greedy = tokenize(
            &data,
            &Lz77Config {
                lazy: false,
                ..Lz77Config::default()
            },
        );
        assert!(
            lazy.len() <= greedy.len() + 2,
            "lazy {} greedy {}",
            lazy.len(),
            greedy.len()
        );
        assert_eq!(expand(&lazy), data);
        assert_eq!(expand(&greedy), data);
    }

    #[test]
    fn presets_round_trip_and_order_by_ratio() {
        let data = b"the quick brown fox jumps over the lazy dog. ".repeat(200);
        let fast = tokenize(&data, &Lz77Config::fast());
        let default = tokenize(&data, &Lz77Config::default());
        let best = tokenize(&data, &Lz77Config::best());
        assert_eq!(expand(&fast), data);
        assert_eq!(expand(&default), data);
        assert_eq!(expand(&best), data);
        assert!(best.len() <= default.len());
        assert!(default.len() <= fast.len() + 4);
    }

    #[test]
    fn match_lengths_capped() {
        let data = vec![1u8; 100_000];
        let tokens = tokenize(&data, &Lz77Config::default());
        for t in &tokens {
            if let Token::Match { len, .. } = t {
                assert!((*len as usize) <= MAX_MATCH);
                assert!((*len as usize) >= MIN_MATCH);
            }
        }
        assert_eq!(expand(&tokens), data);
    }
}
