//! Codec error type.

use std::fmt;

/// Errors produced while decoding compressed streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the stream was complete.
    UnexpectedEof,
    /// A container or block header was malformed.
    BadHeader {
        /// What was being parsed.
        what: &'static str,
    },
    /// A symbol fell outside its alphabet or code table.
    BadSymbol {
        /// The offending raw value.
        value: u64,
    },
    /// A back-reference pointed before the start of the output.
    BadDistance {
        /// The offending distance.
        distance: usize,
        /// Output produced so far.
        produced: usize,
    },
    /// The decoded payload failed its checksum.
    ChecksumMismatch {
        /// Checksum stored in the stream.
        expected: u32,
        /// Checksum of the decoded bytes.
        actual: u32,
    },
    /// A declared length exceeded a sanity bound.
    LengthOverflow {
        /// The declared length.
        declared: u64,
    },
    /// A Huffman code table was invalid (over-subscribed or empty).
    BadCodeTable,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::BadHeader { what } => write!(f, "malformed {} header", what),
            CodecError::BadSymbol { value } => write!(f, "invalid symbol {}", value),
            CodecError::BadDistance { distance, produced } => write!(
                f,
                "back-reference distance {} exceeds {} produced bytes",
                distance, produced
            ),
            CodecError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checksum mismatch: stored {:08x}, computed {:08x}",
                expected, actual
            ),
            CodecError::LengthOverflow { declared } => {
                write!(f, "declared length {} exceeds sanity bound", declared)
            }
            CodecError::BadCodeTable => write!(f, "invalid prefix-code table"),
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            CodecError::UnexpectedEof.to_string(),
            "unexpected end of input"
        );
        assert!(CodecError::ChecksumMismatch {
            expected: 0xdeadbeef,
            actual: 1
        }
        .to_string()
        .contains("deadbeef"));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CodecError>();
    }
}
