//! # faaspipe-codec — compression substrate
//!
//! From-scratch building blocks for the METHCOMP reproduction and its
//! gzip-class baseline (the paper claims METHCOMP compresses methylation
//! data ~10× better than gzip; reproducing that claim requires owning both
//! sides of the comparison):
//!
//! * [`bitio`] — MSB-first bit-level readers and writers
//! * [`varint`] — LEB128 varints and zigzag signed encoding
//! * [`rle`] — byte-wise run-length coding
//! * [`checksum`] — CRC-32 (IEEE)
//! * [`huffman`] — canonical, length-limited Huffman codes
//! * [`lz77`] — hash-chain match finder over a sliding window
//! * [`gzipish`] — a DEFLATE-shaped LZ77 + Huffman container
//!   (compressor *and* decompressor), the gzip stand-in
//! * [`range`] — adaptive binary range coder with bit-tree byte models
//!
//! All coders round-trip losslessly; the property-test suite hammers that
//! invariant.
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), faaspipe_codec::CodecError> {
//! let data = b"abcabcabcabcabcabc".repeat(20);
//! let packed = faaspipe_codec::gzipish::compress(&data);
//! assert!(packed.len() < data.len());
//! let unpacked = faaspipe_codec::gzipish::decompress(&packed)?;
//! assert_eq!(unpacked, data);
//! # Ok(())
//! # }
//! ```

pub mod bitio;
pub mod checksum;
pub mod error;
pub mod gzipish;
pub mod huffman;
pub mod lz77;
pub mod range;
pub mod rle;
pub mod varint;

pub use error::CodecError;
