//! Dependency-free JSON for the faaspipe workspace.
//!
//! Replaces `serde`/`serde_json` (unavailable offline) with a small value
//! model ([`Json`]), a recursive-descent parser, and printers whose output
//! is byte-compatible with `serde_json`'s compact and pretty formats for
//! the documents this workspace produces (2-space indent, `": "` key
//! separator, whole floats printed as `1.0`, u64 printed as integers).
//!
//! Conversion goes through the [`ToJson`] / [`FromJson`] traits; the
//! [`json_object!`] macro derives both for plain structs by listing their
//! fields (`req name` for required, `opt name` for default-when-missing).

use std::fmt::Write as _;

/// A JSON document value.
///
/// Integers keep their sign information (`Int` vs `UInt`) so `u64`
/// round-trips without a float detour; objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A negative (or small signed) integer.
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) | Json::UInt(_) => "integer",
            Json::Float(_) => "number",
            Json::Str(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }
}

/// Error produced by parsing or by [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong, with enough context to locate it.
    pub message: String,
}

impl JsonError {
    /// Builds an error from any displayable message.
    pub fn new(message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for JsonError {}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn float_repr(x: f64) -> String {
    if x.is_finite() {
        // `{:?}` matches serde_json: whole floats keep a trailing `.0`.
        format!("{:?}", x)
    } else {
        // serde_json refuses non-finite floats; emit null like its
        // lossy writers do rather than panicking mid-report.
        "null".to_string()
    }
}

fn write_compact(out: &mut String, v: &Json) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(i) => {
            let _ = write!(out, "{}", i);
        }
        Json::UInt(u) => {
            let _ = write!(out, "{}", u);
        }
        Json::Float(x) => out.push_str(&float_repr(*x)),
        Json::Str(s) => escape_into(out, s),
        Json::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Json::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Json, depth: usize) {
    const INDENT: &str = "  ";
    match v {
        Json::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                for _ in 0..=depth {
                    out.push_str(INDENT);
                }
                write_pretty(out, item, depth + 1);
            }
            out.push('\n');
            for _ in 0..depth {
                out.push_str(INDENT);
            }
            out.push(']');
        }
        Json::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                for _ in 0..=depth {
                    out.push_str(INDENT);
                }
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, val, depth + 1);
            }
            out.push('\n');
            for _ in 0..depth {
                out.push_str(INDENT);
            }
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

impl Json {
    /// Renders without any whitespace (serde_json compact format).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        write_compact(&mut out, self);
        out
    }

    /// Renders with 2-space indentation (serde_json pretty format).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write_pretty(&mut out, self, 0);
        out
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> JsonError {
        JsonError::new(format!("{} at byte {}", what, self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string().map_err(|_| self.err("expected object key"))?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // printer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input was validated).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

impl std::str::FromStr for Json {
    type Err = JsonError;

    fn from_str(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

// ---------------------------------------------------------------------------
// Conversion traits
// ---------------------------------------------------------------------------

/// Types that can render themselves as a [`Json`] value.
pub trait ToJson {
    /// Converts to a JSON value.
    fn to_json(&self) -> Json;
}

/// Types that can be reconstructed from a [`Json`] value.
pub trait FromJson: Sized {
    /// Converts from a JSON value.
    ///
    /// # Errors
    /// [`JsonError`] naming the offending field or type mismatch.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

macro_rules! impl_json_uint {
    ($($ty:ty),* $(,)?) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }

        impl FromJson for $ty {
            fn from_json(v: &Json) -> Result<$ty, JsonError> {
                let wide = match *v {
                    Json::UInt(u) => u,
                    Json::Int(i) if i >= 0 => i as u64,
                    _ => return Err(JsonError::new(format!(
                        "expected unsigned integer, found {}", v.kind()))),
                };
                <$ty>::try_from(wide).map_err(|_| {
                    JsonError::new(format!("integer {} out of range", wide))
                })
            }
        }
    )*};
}

impl_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_json_int {
    ($($ty:ty),* $(,)?) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                let wide = *self as i64;
                if wide < 0 { Json::Int(wide) } else { Json::UInt(wide as u64) }
            }
        }

        impl FromJson for $ty {
            fn from_json(v: &Json) -> Result<$ty, JsonError> {
                let wide = match *v {
                    Json::Int(i) => i,
                    Json::UInt(u) => i64::try_from(u).map_err(|_| {
                        JsonError::new(format!("integer {} out of range", u))
                    })?,
                    _ => return Err(JsonError::new(format!(
                        "expected integer, found {}", v.kind()))),
                };
                <$ty>::try_from(wide).map_err(|_| {
                    JsonError::new(format!("integer {} out of range", wide))
                })
            }
        }
    )*};
}

impl_json_int!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<f64, JsonError> {
        match *v {
            Json::Float(x) => Ok(x),
            Json::Int(i) => Ok(i as f64),
            Json::UInt(u) => Ok(u as f64),
            _ => Err(JsonError::new(format!(
                "expected number, found {}",
                v.kind()
            ))),
        }
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(*self as f64)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<bool, JsonError> {
        match *v {
            Json::Bool(b) => Ok(b),
            _ => Err(JsonError::new(format!("expected bool, found {}", v.kind()))),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<String, JsonError> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            _ => Err(JsonError::new(format!(
                "expected string, found {}",
                v.kind()
            ))),
        }
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(value) => value.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Option<T>, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Vec<T>, JsonError> {
        match v {
            Json::Array(items) => items.iter().map(T::from_json).collect(),
            _ => Err(JsonError::new(format!(
                "expected array, found {}",
                v.kind()
            ))),
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Json, JsonError> {
        Ok(v.clone())
    }
}

/// Extracts a required object field.
///
/// # Errors
/// Missing field or type mismatch, naming the field.
pub fn field<T: FromJson>(v: &Json, name: &str) -> Result<T, JsonError> {
    match v.get(name) {
        Some(value) => {
            T::from_json(value).map_err(|e| JsonError::new(format!("field '{}': {}", name, e)))
        }
        None => Err(JsonError::new(format!("missing field '{}'", name))),
    }
}

/// Extracts an optional object field; missing or `null` yields the
/// type's default (mirrors `#[serde(default)]`).
///
/// # Errors
/// Type mismatch on a present, non-null value.
pub fn field_or_default<T: FromJson + Default>(v: &Json, name: &str) -> Result<T, JsonError> {
    match v.get(name) {
        None | Some(Json::Null) => Ok(T::default()),
        Some(value) => {
            T::from_json(value).map_err(|e| JsonError::new(format!("field '{}': {}", name, e)))
        }
    }
}

/// Derives [`ToJson`] and [`FromJson`] for a struct by listing its
/// fields: `req` fields must be present, `opt` fields default when
/// missing or null.
///
/// ```ignore
/// json_object! { StageSpec { req name, req kind, opt workers } }
/// ```
#[macro_export]
macro_rules! json_object {
    ($ty:ident { $($mode:ident $field:ident),* $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Object(vec![
                    $((stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)),)*
                ])
            }
        }

        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> ::std::result::Result<Self, $crate::JsonError> {
                ::std::result::Result::Ok($ty {
                    $($field: $crate::__json_field!($mode, v, $field),)*
                })
            }
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __json_field {
    (req, $v:expr, $field:ident) => {
        $crate::field($v, stringify!($field))?
    };
    (opt, $v:expr, $field:ident) => {
        $crate::field_or_default($v, stringify!($field))?
    };
}

// ---------------------------------------------------------------------------
// serde_json-shaped entry points
// ---------------------------------------------------------------------------

/// Serializes to pretty JSON text (2-space indent).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_pretty()
}

/// Serializes to compact JSON text.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_compact()
}

/// Serializes to compact JSON bytes.
pub fn to_vec<T: ToJson + ?Sized>(value: &T) -> Vec<u8> {
    to_string(value).into_bytes()
}

/// Serializes to pretty JSON bytes.
pub fn to_vec_pretty<T: ToJson + ?Sized>(value: &T) -> Vec<u8> {
    to_string_pretty(value).into_bytes()
}

/// Parses a value from JSON text.
///
/// # Errors
/// [`JsonError`] with a byte offset for syntax errors, or the failing
/// field for conversion errors.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    let v: Json = text.parse()?;
    T::from_json(&v)
}

/// Parses a value from JSON bytes (must be UTF-8).
///
/// # Errors
/// See [`from_str`]; additionally rejects invalid UTF-8.
pub fn from_slice<T: FromJson>(data: &[u8]) -> Result<T, JsonError> {
    let text = std::str::from_utf8(data).map_err(|_| JsonError::new("invalid UTF-8"))?;
    from_str(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Default)]
    struct Demo {
        name: String,
        count: u64,
        ratio: f64,
        tags: Vec<String>,
        note: Option<String>,
    }

    json_object! { Demo { req name, req count, req ratio, opt tags, opt note } }

    #[test]
    fn struct_round_trip() {
        let d = Demo {
            name: "x\"y".into(),
            count: 3,
            ratio: 1.0,
            tags: vec!["a".into()],
            note: None,
        };
        let text = to_string_pretty(&d);
        assert!(text.contains("\"ratio\": 1.0"), "{}", text);
        assert!(text.contains("\"count\": 3"), "{}", text);
        assert!(text.contains("\"x\\\"y\""), "{}", text);
        let back: Demo = from_str(&text).expect("parse back");
        assert_eq!(back, d);
    }

    #[test]
    fn missing_required_field_errors() {
        let err = from_str::<Demo>("{\"name\": \"a\"}").expect_err("incomplete");
        assert!(err.message.contains("missing field 'count'"), "{}", err);
    }

    #[test]
    fn optional_fields_default() {
        let d: Demo = from_str("{\"name\": \"a\", \"count\": 1, \"ratio\": 0.5, \"note\": null}")
            .expect("parse");
        assert!(d.tags.is_empty());
        assert_eq!(d.note, None);
    }

    #[test]
    fn pretty_format_matches_serde_json() {
        let v = Json::Object(vec![
            ("a".into(), Json::UInt(1)),
            ("b".into(), Json::Array(vec![Json::Bool(true), Json::Null])),
            ("c".into(), Json::Object(vec![])),
        ]);
        assert_eq!(
            v.to_pretty(),
            "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    null\n  ],\n  \"c\": {}\n}"
        );
        assert_eq!(v.to_compact(), "{\"a\":1,\"b\":[true,null],\"c\":{}}");
    }

    #[test]
    fn parser_handles_escapes_numbers_and_nesting() {
        let v: Json = r#" { "s": "a\nbA", "n": -5, "f": 2.5e2, "u": 18446744073709551615,
                            "arr": [ 1 , 2 ,3 ], "o": { } } "#
            .parse()
            .expect("parse");
        assert_eq!(v.get("s").and_then(Json::as_str), Some("a\nbA"));
        assert_eq!(v.get("n"), Some(&Json::Int(-5)));
        assert_eq!(v.get("f"), Some(&Json::Float(250.0)));
        assert_eq!(v.get("u"), Some(&Json::UInt(u64::MAX)));
        assert_eq!(
            v.get("arr").and_then(Json::as_array).map(<[Json]>::len),
            Some(3)
        );
        assert!("{not json".parse::<Json>().is_err());
        assert!("[1,]".parse::<Json>().is_err());
        assert!("1 2".parse::<Json>().is_err());
    }

    #[test]
    fn float_whole_values_keep_point() {
        assert_eq!(Json::Float(83.32).to_compact(), "83.32");
        assert_eq!(Json::Float(1.0).to_compact(), "1.0");
        assert_eq!(Json::Float(f64::NAN).to_compact(), "null");
    }
}
