//! `io_concurrency = 1` must reproduce the pre-parallel-I/O data plane
//! *exactly* — same event interleaving, same retry RNG draws, same
//! virtual timestamps. These golden numbers were captured from the tree
//! immediately before the windowed data plane landed; any drift means
//! the K=1 path is no longer the verbatim sequential code.

use faaspipe::core::pipeline::{run_methcomp_pipeline, PipelineConfig, PipelineMode};
use faaspipe::exchange::ExchangeKind;

#[test]
fn sequential_io_reproduces_pre_parallel_data_plane_exactly() {
    for (kind, golden_latency_ns) in [
        (ExchangeKind::Scatter, 84_896_272_944u64),
        (ExchangeKind::Coalesced, 84_700_272_934u64),
    ] {
        let mut cfg = PipelineConfig::paper_table1();
        cfg.mode = PipelineMode::PureServerless;
        cfg.physical_records = 15_000;
        cfg.exchange = kind;
        cfg.io_concurrency = 1;
        cfg.trace = true;
        let out = run_methcomp_pipeline(&cfg).expect("pipeline ok");
        assert!(out.verified, "{}: output verification failed", kind);
        assert_eq!(
            out.latency.as_nanos(),
            golden_latency_ns,
            "{}: K=1 latency drifted from the pre-PR golden value",
            kind
        );
    }
}
