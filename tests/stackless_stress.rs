//! Stress and panic-path regression suite for the stackless DES loop.
//!
//! Two properties the thread-backed scheduler gave us for free must
//! survive the state-machine rewrite:
//!
//! 1. A fan_out job that panics mid-queue surfaces as a `JoinError` at
//!    the caller's join — never a hang, never a silently missing slot —
//!    while the surviving workers keep draining the shared queue.
//! 2. Tens of thousands of short-lived processes (nested spawn/join plus
//!    fan_out) run to completion deterministically on the event-loop
//!    thread alone: zero pool workers, and host thread count bounded by
//!    the CPU-offload pool cap.
//!
//! This file is deliberately its own integration-test binary: the
//! `/proc/self/status` thread-count assertions would be polluted by the
//! libtest harness threads of unrelated tests sharing a process.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use rand::RngCore;

use faaspipe::des::{Ctx, Sim, SimConfig, SimDuration};

/// Current `Threads:` count of this process, from /proc/self/status.
/// Returns None off-Linux so the bound degrades to a no-op there.
fn host_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// The CPU-offload pool's thread ceiling (mirrors `OffloadPool::new`).
fn offload_cap() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

// ---------------------------------------------------------------------------
// Satellite: panic in a mid-queue fan_out job must yield JoinError.
// ---------------------------------------------------------------------------

#[test]
fn fan_out_job_panic_mid_queue_yields_join_error() {
    let completed = Arc::new(AtomicUsize::new(0));
    let saw_error = Arc::new(AtomicUsize::new(0));

    let mut sim = Sim::new();
    let completed2 = Arc::clone(&completed);
    let saw_error2 = Arc::clone(&saw_error);
    sim.spawn_task("driver", move |ctx| async move {
        // 8 jobs over a window of 2: job 3 sits mid-queue, behind the
        // first wave but ahead of the tail. Its panic kills one worker;
        // the sibling must keep draining the rest.
        let jobs: Vec<_> = (0..8u64)
            .map(|i| {
                let completed = Arc::clone(&completed2);
                async move |cctx: &mut Ctx| {
                    cctx.sleep_async(SimDuration::from_millis(10 + i)).await;
                    if i == 3 {
                        panic!("job 3 exploded");
                    }
                    completed.fetch_add(1, Ordering::SeqCst);
                    i * i
                }
            })
            .collect();
        match ctx.fan_out_async("flaky", 2, jobs).await {
            Ok(out) => panic!("fan_out must not succeed, got {:?}", out),
            Err(e) => {
                assert!(
                    e.message.contains("job 3 exploded"),
                    "JoinError must carry the panic payload, got: {}",
                    e.message
                );
                saw_error2.fetch_add(1, Ordering::SeqCst);
            }
        }
    });

    let report = sim.run().expect("observed panic must not fail the run");
    assert_eq!(
        saw_error.load(Ordering::SeqCst),
        1,
        "caller got the JoinError"
    );
    assert_eq!(
        completed.load(Ordering::SeqCst),
        7,
        "surviving worker drains every job except the panicked one"
    );
    assert_eq!(report.pool_workers, 0, "fan_out_async stays stackless");
}

// ---------------------------------------------------------------------------
// Satellite: ≥50k short-lived stackless processes, deterministic, no threads.
// ---------------------------------------------------------------------------

const BATCHES: u64 = 500;
const KIDS_PER_BATCH: u64 = 100;
const FAN_JOBS_PER_BATCH: u64 = 16;
const FAN_WINDOW: usize = 8;

/// One full run: a root task spawns `BATCHES` batch processes; each batch
/// spawns `KIDS_PER_BATCH` children (joined with `join_all_async`) and a
/// `FAN_WINDOW`-wide fan_out. Total processes:
/// 1 + 500 · (1 + 100 + 8) = 54_501.
fn run_once(seed: u64) -> (u64, u64, usize, u64, usize) {
    let checksum = Arc::new(AtomicU64::new(0));
    let peak_threads = Arc::new(AtomicUsize::new(0));

    let mut sim = Sim::with_config(SimConfig {
        seed,
        ..SimConfig::default()
    });
    let checksum2 = Arc::clone(&checksum);
    let peak2 = Arc::clone(&peak_threads);
    sim.spawn_task("root", move |ctx| async move {
        let mut batches = Vec::with_capacity(BATCHES as usize);
        for b in 0..BATCHES {
            let checksum = Arc::clone(&checksum2);
            let pid = ctx
                .spawn_task(format!("batch{b}"), move |bctx| async move {
                    // Nested spawn/join: short-lived children with
                    // staggered virtual sleeps and pid-seeded rng draws.
                    let mut kids = Vec::with_capacity(KIDS_PER_BATCH as usize);
                    for k in 0..KIDS_PER_BATCH {
                        let checksum = Arc::clone(&checksum);
                        let kid = bctx
                            .spawn_task(format!("kid{b}.{k}"), move |kctx| async move {
                                let mut kctx = kctx;
                                let nap = (b * 31 + k * 7) % 97 + 1;
                                kctx.sleep_async(SimDuration::from_micros(nap)).await;
                                let draw = kctx.rng().next_u64();
                                let stamp = kctx.now().as_nanos();
                                checksum.fetch_add(draw ^ stamp ^ (b << 32 | k), Ordering::SeqCst);
                            })
                            .await;
                        kids.push(kid);
                    }
                    // fan_out: a queue of jobs drained by a bounded
                    // window of stackless workers.
                    let jobs: Vec<_> = (0..FAN_JOBS_PER_BATCH)
                        .map(|j| {
                            async move |fctx: &mut Ctx| {
                                fctx.sleep_async(SimDuration::from_micros(j % 5 + 1)).await;
                                fctx.rng().next_u64().wrapping_add(j)
                            }
                        })
                        .collect();
                    let fanned = bctx
                        .fan_out_async("fan", FAN_WINDOW, jobs)
                        .await
                        .expect("fan_out completes");
                    let folded = fanned.iter().fold(0u64, |acc, v| acc.wrapping_add(*v));
                    bctx.join_all_async(&kids).await.expect("kids complete");
                    checksum.fetch_add(folded ^ bctx.now().as_nanos(), Ordering::SeqCst);
                })
                .await;
            batches.push(pid);
        }
        ctx.join_all_async(&batches)
            .await
            .expect("batches complete");
        // Sample the host thread count while the event loop is live —
        // after run() returns the pools have been dropped, so this is
        // the only honest observation point.
        if let Some(t) = host_threads() {
            peak2.fetch_max(t, Ordering::SeqCst);
        }
    });

    let report = sim.run().expect("stress run completes");
    assert_eq!(
        report.pool_workers, 0,
        "every process must run as a state machine, not a pool thread"
    );
    (
        report.end_time.as_nanos(),
        report.events,
        report.processes,
        checksum.load(Ordering::SeqCst),
        peak_threads.load(Ordering::SeqCst),
    )
}

#[test]
fn fifty_thousand_stackless_processes_complete_deterministically() {
    let baseline = host_threads();

    let (end_a, events_a, procs_a, sum_a, live_threads) = run_once(0xFAA5_0001);

    assert!(
        procs_a >= 50_000,
        "stress run must exercise ≥50k processes, got {procs_a}"
    );

    // Host thread count observed mid-run stays within the offload-pool
    // cap of the baseline: the 54k processes must not map to OS threads.
    if let (Some(before), live) = (baseline, live_threads) {
        if live > 0 {
            assert!(
                live <= before + offload_cap(),
                "host threads grew past the offload cap: {before} -> {live} \
                 (cap {})",
                offload_cap()
            );
        }
    }

    // Determinism: a second seed-equal run reproduces the virtual end
    // time, the event count, the process count, and the checksum folded
    // from every child's rng draw and finish stamp.
    let (end_b, events_b, procs_b, sum_b, _) = run_once(0xFAA5_0001);
    assert_eq!(end_a, end_b, "virtual end time must be seed-deterministic");
    assert_eq!(events_a, events_b, "event count must be seed-deterministic");
    assert_eq!(procs_a, procs_b, "process count must be seed-deterministic");
    assert_eq!(
        sum_a, sum_b,
        "rng/timestamp checksum must be seed-deterministic"
    );

    // And a different seed must actually change the random streams —
    // guards against the checksum degenerating into a constant.
    let (_, _, _, sum_c, _) = run_once(0xDEAD_BEEF);
    assert_ne!(sum_a, sum_c, "checksum must depend on the sim seed");
}
