//! Bit-identity pins for the O(active)-free flow network (PR 9).
//!
//! The flow-network rewrite (incremental bottleneck search, indexed
//! completions, link-membership lists) and the coalesced-exchange
//! restructuring (sparse offsets, empty-fetch elision) are host-side
//! optimisations only: same seed ⇒ byte-identical virtual time, event
//! counts, and trace exports. These goldens pin the BENCH_host
//! trajectory itself — the coalesced pure-serverless sort at W ∈
//! {64, 256, 1024} — which the `pooled_determinism` suite (scatter /
//! relay modes) does not cover.
//!
//! The constants were captured from the tree immediately before the
//! flow-network rewrite landed. Re-capture (after an *intentional*
//! model change only) with:
//! `FAASPIPE_PRINT_GOLDEN=1 cargo test --release --test flow_scale_goldens -- --nocapture`

use faaspipe::codec::checksum::Crc32;
use faaspipe::core::dag::WorkerChoice;
use faaspipe::core::pipeline::{run_methcomp_pipeline, PipelineConfig, PipelineMode};
use faaspipe::shuffle::ExchangeKind;
use faaspipe::trace::chrome_trace_json;

fn print_golden() -> bool {
    std::env::var("FAASPIPE_PRINT_GOLDEN").is_ok()
}

/// Digest of one traced BENCH_host-shaped run: `(latency ns, events,
/// trace crc32)`. The trace crc folds every span the run emitted, so
/// any drift in virtual-time trajectory, pid assignment, or span
/// attribution shows up here.
fn coalesced_digest(workers: usize) -> (u64, u64, u32) {
    let mut cfg = PipelineConfig::paper_table1();
    cfg.mode = PipelineMode::PureServerless;
    cfg.physical_records = 8_000;
    cfg.workers = WorkerChoice::Fixed(workers);
    cfg.exchange = ExchangeKind::Coalesced;
    cfg.trace = true;
    let out = run_methcomp_pipeline(&cfg).expect("pipeline ok");
    assert!(out.verified, "W={} run must verify", workers);
    let mut crc = Crc32::new();
    crc.update(chrome_trace_json(&out.trace).as_bytes());
    (out.latency.as_nanos(), out.sim.events, crc.finish())
}

fn check(workers: usize, golden: (u64, u64, u32)) {
    let (latency, events, crc) = coalesced_digest(workers);
    if print_golden() {
        println!(
            "GOLDEN coalesced W={}: latency_ns={} events={} trace_crc=0x{:08X}",
            workers, latency, events, crc
        );
        return;
    }
    assert_eq!(latency, golden.0, "W={} sim latency drifted", workers);
    assert_eq!(events, golden.1, "W={} event count drifted", workers);
    assert_eq!(crc, golden.2, "W={} trace bytes drifted", workers);
}

#[test]
fn coalesced_w64_matches_pre_rewrite_goldens() {
    check(
        64,
        (
            GOLDEN_W64_LATENCY_NS,
            GOLDEN_W64_EVENTS,
            GOLDEN_W64_TRACE_CRC,
        ),
    );
}

#[test]
fn coalesced_w256_matches_pre_rewrite_goldens() {
    check(
        256,
        (
            GOLDEN_W256_LATENCY_NS,
            GOLDEN_W256_EVENTS,
            GOLDEN_W256_TRACE_CRC,
        ),
    );
}

#[test]
fn coalesced_w1024_matches_pre_rewrite_goldens() {
    check(
        1024,
        (
            GOLDEN_W1024_LATENCY_NS,
            GOLDEN_W1024_EVENTS,
            GOLDEN_W1024_TRACE_CRC,
        ),
    );
}

const GOLDEN_W64_LATENCY_NS: u64 = 58_488_927_061;
const GOLDEN_W64_EVENTS: u64 = 14_311;
const GOLDEN_W64_TRACE_CRC: u32 = 0xB462_75BA;
const GOLDEN_W256_LATENCY_NS: u64 = 58_600_069_029;
const GOLDEN_W256_EVENTS: u64 = 43_169;
const GOLDEN_W256_TRACE_CRC: u32 = 0x1B81_EA7B;
const GOLDEN_W1024_LATENCY_NS: u64 = 65_987_114_080;
const GOLDEN_W1024_EVENTS: u64 = 111_327;
const GOLDEN_W1024_TRACE_CRC: u32 = 0x9003_F2B7;
