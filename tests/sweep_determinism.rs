//! The sweep engine's headline guarantee, checked end to end: running
//! independent simulations on worker threads changes *nothing* about
//! the results — JSON artifacts and per-run trace exports are
//! byte-identical at every job count, a panicking cell reports its grid
//! coordinates while every sibling still completes, and the
//! calibration pipeline (probe sims → order-stable fit) serializes to
//! the same bytes serial and parallel.
//!
//! Why this holds: a `Sim` is a pure function of its config and seed
//! (virtual time never reads the host clock), each cell builds and
//! runs its `Sim` entirely on one worker thread (shared-nothing), and
//! the engine returns rows in submission order regardless of which
//! cell finished first.

use faaspipe::codec::checksum::Crc32;
use faaspipe::core::dag::WorkerChoice;
use faaspipe::core::pipeline::{run_methcomp_pipeline, PipelineConfig, PipelineMode};
use faaspipe::plan::{calibrate, Calibration, ModelParams, ProbeRun, ProbeSpec};
use faaspipe::shuffle::ExchangeKind;
use faaspipe::sweep::Sweep;
use faaspipe::trace::{chrome_trace_json, TraceData};

const RECORDS: usize = 8_000;

/// The shape the repro binaries serialize: one JSON row per grid cell.
struct Row {
    backend: String,
    workers: usize,
    latency_s: f64,
    cost_dollars: f64,
    events: u64,
}

faaspipe_json::json_object! {
    Row { req backend, req workers, req latency_s, req cost_dollars, req events }
}

fn traced_cell(workers: usize, backend: ExchangeKind) -> (Row, TraceData) {
    let mut cfg = PipelineConfig::paper_table1();
    cfg.mode = PipelineMode::PureServerless;
    cfg.physical_records = RECORDS;
    cfg.workers = WorkerChoice::Fixed(workers);
    cfg.exchange = backend;
    cfg.trace = true;
    let outcome = run_methcomp_pipeline(&cfg).expect("pipeline run");
    assert!(outcome.verified, "{} W={} must verify", backend, workers);
    (
        Row {
            backend: backend.to_string(),
            workers,
            latency_s: outcome.latency.as_secs_f64(),
            cost_dollars: outcome.cost.total().as_dollars(),
            events: outcome.sim.events,
        },
        outcome.trace,
    )
}

fn trace_crc(trace: &TraceData) -> u32 {
    let mut crc = Crc32::new();
    crc.update(chrome_trace_json(trace).as_bytes());
    crc.finish()
}

/// Runs the E15-shaped grid at one job count; returns the serialized
/// JSON artifact and the per-run trace CRCs, in submission order.
fn grid_digest(jobs: usize) -> (String, Vec<u32>) {
    let mut sweep: Sweep<(Row, TraceData)> = Sweep::new();
    for backend in [ExchangeKind::Scatter, ExchangeKind::Coalesced] {
        for workers in [4usize, 8] {
            sweep.push(format!("{} W={}", backend, workers), move || {
                traced_cell(workers, backend)
            });
        }
    }
    let cells = sweep.run_expect(jobs);
    let crcs: Vec<u32> = cells.iter().map(|(_, trace)| trace_crc(trace)).collect();
    let rows: Vec<Row> = cells.into_iter().map(|(row, _)| row).collect();
    (faaspipe_json::to_string_pretty(&rows), crcs)
}

#[test]
fn grid_json_and_trace_crcs_identical_across_job_counts() {
    let (serial_json, serial_crcs) = grid_digest(1);
    for jobs in [2usize, 8] {
        let (json, crcs) = grid_digest(jobs);
        assert_eq!(
            serial_json, json,
            "JSON artifact must be byte-identical at --jobs {}",
            jobs
        );
        assert_eq!(
            serial_crcs, crcs,
            "per-run trace exports must be byte-identical at --jobs {}",
            jobs
        );
    }
}

/// The calibration path: probe sims through the engine, then the
/// order-stable fit. Serial and 8-way parallel must serialize the same
/// `Calibration`, byte for byte — this is E19's `calibration.json`.
fn calibrate_at(jobs: usize) -> Calibration {
    const MODELED: u64 = 3_500_000_000;
    let probe_grid = [
        (4usize, 1usize, ExchangeKind::Scatter),
        (4, 4, ExchangeKind::Scatter),
        (4, 1, ExchangeKind::VmRelay),
    ];
    let mut sweep: Sweep<(ProbeSpec, TraceData)> = Sweep::new();
    for (workers, k, exchange) in probe_grid {
        sweep.push(
            format!("probe W={} K={} {}", workers, k, exchange),
            move || {
                let mut cfg = PipelineConfig::paper_table1();
                cfg.mode = PipelineMode::PureServerless;
                cfg.physical_records = RECORDS;
                cfg.modeled_bytes = MODELED;
                cfg.workers = WorkerChoice::Fixed(workers);
                cfg.io_concurrency = k;
                cfg.exchange = exchange;
                cfg.trace = true;
                let chunk_wire = cfg.modeled_bytes as f64 / cfg.parallelism as f64;
                let spec = ProbeSpec {
                    label: format!("W{}-K{}-{}", workers, k, exchange),
                    workers,
                    io_concurrency: k,
                    data_bytes: cfg.modeled_bytes as f64,
                    input_chunks: cfg.parallelism,
                    sample_read_bytes: (64.0 * 1024.0 * cfg.size_scale()).min(chunk_wire),
                };
                let outcome = run_methcomp_pipeline(&cfg).expect("probe run");
                assert!(outcome.verified);
                (spec, outcome.trace)
            },
        );
    }
    let probes_raw = sweep.run_expect(jobs);
    let probes: Vec<ProbeRun<'_>> = probes_raw
        .iter()
        .map(|(spec, trace)| ProbeRun { spec, trace })
        .collect();
    calibrate(&probes, &ModelParams::default())
}

#[test]
fn calibration_json_identical_serial_and_parallel() {
    let serial = faaspipe_json::to_string_pretty(&calibrate_at(1));
    let parallel = faaspipe_json::to_string_pretty(&calibrate_at(8));
    assert_eq!(
        serial, parallel,
        "calibration.json must not depend on the job count"
    );
    assert!(serial.contains("store_latency_s"));
}

#[test]
fn panicking_cell_reports_coordinates_and_siblings_complete() {
    // Serial reference for the healthy cells.
    let (reference, _) = traced_cell(4, ExchangeKind::Scatter);

    let mut sweep: Sweep<(Row, TraceData)> = Sweep::new();
    sweep.push("scatter W=4", || traced_cell(4, ExchangeKind::Scatter));
    sweep.push("poisoned W=8 k=2", || panic!("poisoned cell"));
    sweep.push("coalesced W=4", || traced_cell(4, ExchangeKind::Coalesced));
    let outcome = sweep.run(8);

    assert_eq!(outcome.results.len(), 3);
    let first = outcome.results[0].as_ref().expect("sibling before");
    assert_eq!(first.0.latency_s, reference.latency_s);
    assert_eq!(first.0.events, reference.events);
    let failure = match &outcome.results[1] {
        Ok(_) => panic!("poisoned cell must fail"),
        Err(failure) => failure,
    };
    assert_eq!(failure.index, 1, "failure carries the cell's position");
    assert_eq!(failure.label, "poisoned W=8 k=2", "failure names the cell");
    assert!(
        failure.panic.contains("poisoned cell"),
        "failure carries the panic payload, got: {}",
        failure.panic
    );
    let last = outcome.results[2].as_ref().expect("sibling after");
    assert_eq!(last.0.backend, "coalesced");
    assert!(last.0.latency_s > 0.0);
}
