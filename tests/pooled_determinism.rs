//! Cross-layer determinism suite for the pooled DES scheduler and the
//! zero-copy shuffle kernels.
//!
//! The golden constants below were captured from the tree immediately
//! before the parked worker pool and the wire-record kernels landed
//! (thread-per-process scheduler, decode-then-sort data plane). The
//! pooled scheduler and the zero-copy kernels are host-side rewrites
//! only: same seed ⇒ the same virtual-time trajectory, byte-identical
//! trace exports, and byte-identical sorted-run objects. Any drift here
//! means host execution leaked into simulation outcomes.
//!
//! Re-capture (after an *intentional* model change only) with:
//! `FAASPIPE_PRINT_GOLDEN=1 cargo test --release --test pooled_determinism -- --nocapture`

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use faaspipe::codec::checksum::Crc32;
use faaspipe::core::pipeline::{run_methcomp_pipeline, PipelineConfig, PipelineMode};
use faaspipe::des::Sim;
use faaspipe::exchange::{DataExchange, RelayConfig, ShardedRelayConfig, ShardedRelayExchange};
use faaspipe::faas::{FaasConfig, FunctionPlatform};
use faaspipe::shuffle::{serverless_sort, SortConfig, SortRecord};
use faaspipe::store::{ObjectStore, StoreConfig};
use faaspipe::trace::chrome_trace_json;
use faaspipe::vm::VmFleet;

fn print_golden() -> bool {
    std::env::var("FAASPIPE_PRINT_GOLDEN").is_ok()
}

/// Digest of a traced Table-1 pipeline run: `(latency ns, trace crc32)`.
fn table1_digest(mode: PipelineMode) -> (u64, u32) {
    let mut cfg = PipelineConfig::paper_table1();
    cfg.mode = mode;
    cfg.physical_records = 15_000;
    cfg.trace = true;
    let out = run_methcomp_pipeline(&cfg).expect("pipeline ok");
    assert!(out.verified, "{:?} must verify", mode);
    let mut crc = Crc32::new();
    crc.update(chrome_trace_json(&out.trace).as_bytes());
    (out.latency.as_nanos(), crc.finish())
}

/// Digest of E16's worst case at the sort level: W=128 through a
/// pre-warmed 8-shard relay fleet. Returns `(end ns, events, runs crc32)`
/// where the crc folds every sorted-run object *and its length*, so run
/// boundaries are pinned, not just the concatenation.
fn e16_worst_digest() -> (u64, u64, u32) {
    let values: Vec<u64> = (0..40_000u64)
        .map(|i| (i.wrapping_mul(2_654_435_761)) % 10_000_000)
        .collect();
    let mut sim = Sim::new();
    let store = ObjectStore::install(&mut sim, StoreConfig::default());
    let faas = FunctionPlatform::install(&mut sim, FaasConfig::default());
    store.create_bucket("data").expect("bucket");
    for (i, chunk) in values.chunks(values.len().div_ceil(16)).enumerate() {
        store
            .put_untimed(
                "data",
                &format!("in/{:04}", i),
                Bytes::from(SortRecord::write_all(chunk)),
            )
            .expect("stage");
    }
    let backend: Arc<dyn DataExchange> = Arc::new(ShardedRelayExchange::new(
        VmFleet::new(),
        ShardedRelayConfig {
            relay: RelayConfig::default(),
            shards: 8,
            prewarm: true,
        },
    ));
    let out: Arc<Mutex<Vec<Bytes>>> = Arc::new(Mutex::new(Vec::new()));
    let out2 = Arc::clone(&out);
    let store2 = Arc::clone(&store);
    sim.spawn("driver", move |ctx| {
        let cfg = SortConfig {
            workers: 128,
            backend: Some(backend),
            ..SortConfig::default()
        };
        let stats = serverless_sort::<u64>(ctx, &faas, &store2, &cfg).expect("sort");
        let client = store2.connect(ctx, "verify");
        for run in &stats.runs {
            out2.lock().push(client.get(ctx, "data", run).expect("run"));
        }
    });
    let report = sim.run().expect("sim ok");
    let runs = out.lock().clone();
    assert_eq!(runs.len(), 128);
    let mut crc = Crc32::new();
    for run in &runs {
        crc.update(&(run.len() as u64).to_le_bytes());
        crc.update(run);
    }
    (report.end_time.as_nanos(), report.events, crc.finish())
}

#[test]
fn table1_pure_matches_pre_pool_golden_digests() {
    let (latency, trace_crc) = table1_digest(PipelineMode::PureServerless);
    if print_golden() {
        println!(
            "GOLDEN table1 pure: latency_ns={} trace_crc=0x{:08X}",
            latency, trace_crc
        );
        return;
    }
    assert_eq!(latency, GOLDEN_PURE_LATENCY_NS, "pure latency drifted");
    assert_eq!(trace_crc, GOLDEN_PURE_TRACE_CRC, "pure trace bytes drifted");
}

#[test]
fn table1_hybrid_matches_pre_pool_golden_digests() {
    let (latency, trace_crc) = table1_digest(PipelineMode::VmHybrid);
    if print_golden() {
        println!(
            "GOLDEN table1 hybrid: latency_ns={} trace_crc=0x{:08X}",
            latency, trace_crc
        );
        return;
    }
    assert_eq!(latency, GOLDEN_HYBRID_LATENCY_NS, "hybrid latency drifted");
    assert_eq!(
        trace_crc, GOLDEN_HYBRID_TRACE_CRC,
        "hybrid trace bytes drifted"
    );
}

#[test]
fn e16_worst_case_matches_pre_pool_golden_digests() {
    let (end_ns, events, runs_crc) = e16_worst_digest();
    if print_golden() {
        println!(
            "GOLDEN e16 worst: end_ns={} events={} runs_crc=0x{:08X}",
            end_ns, events, runs_crc
        );
        return;
    }
    assert_eq!(end_ns, GOLDEN_E16_END_NS, "E16 end time drifted");
    assert_eq!(events, GOLDEN_E16_EVENTS, "E16 event count drifted");
    assert_eq!(
        runs_crc, GOLDEN_E16_RUNS_CRC,
        "E16 sorted-run bytes drifted"
    );
}

const GOLDEN_PURE_LATENCY_NS: u64 = 81_903_523_580;
const GOLDEN_PURE_TRACE_CRC: u32 = 0x1A76_939B;
const GOLDEN_HYBRID_LATENCY_NS: u64 = 147_367_241_163;
const GOLDEN_HYBRID_TRACE_CRC: u32 = 0x5744_349C;
const GOLDEN_E16_END_NS: u64 = 48_291_304_023;
const GOLDEN_E16_EVENTS: u64 = 97_432;
const GOLDEN_E16_RUNS_CRC: u32 = 0x3810_DC00;
