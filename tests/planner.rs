//! End-to-end properties of the `--exchange auto` planner: calibration
//! is byte-identically reproducible, auto runs are deterministic per
//! seed, the JSON spec path (`"exchange": "auto"`) drives the planner,
//! and auto never degrades the pipeline's correctness guarantees.

use faaspipe::core::dag::WorkerChoice;
use faaspipe::core::pipeline::{run_methcomp_pipeline, PipelineConfig, PipelineMode};
use faaspipe::core::spec::PipelineSpec;
use faaspipe::plan::{calibrate, Calibration, ModelParams, ProbeRun, ProbeSpec};
use faaspipe::shuffle::ExchangeKind;
use faaspipe::trace::{Category, TraceData, Value};

const MODELED: u64 = 3_500_000_000;

fn quick_cfg() -> PipelineConfig {
    let mut cfg = PipelineConfig::paper_table1();
    cfg.mode = PipelineMode::PureServerless;
    cfg.physical_records = 8_000;
    cfg.modeled_bytes = MODELED;
    cfg
}

/// One traced probe run, as `repro_autotuner` stages them.
fn probe(workers: usize, k: usize, exchange: ExchangeKind) -> (ProbeSpec, TraceData) {
    let mut cfg = quick_cfg();
    cfg.workers = WorkerChoice::Fixed(workers);
    cfg.io_concurrency = k;
    cfg.exchange = exchange;
    cfg.trace = true;
    let chunk_wire = cfg.modeled_bytes as f64 / cfg.parallelism as f64;
    let spec = ProbeSpec {
        label: format!("W{}-K{}-{}", workers, k, exchange),
        workers,
        io_concurrency: k,
        data_bytes: cfg.modeled_bytes as f64,
        input_chunks: cfg.parallelism,
        sample_read_bytes: (64.0 * 1024.0 * cfg.size_scale()).min(chunk_wire),
    };
    let outcome = run_methcomp_pipeline(&cfg).expect("probe run");
    assert!(outcome.verified);
    (spec, outcome.trace)
}

fn calibrate_once() -> Calibration {
    let probes_raw = [
        probe(4, 1, ExchangeKind::Scatter),
        probe(4, 1, ExchangeKind::VmRelay),
    ];
    let probes: Vec<ProbeRun<'_>> = probes_raw
        .iter()
        .map(|(spec, trace)| ProbeRun { spec, trace })
        .collect();
    calibrate(&probes, &ModelParams::default())
}

#[test]
fn calibration_is_byte_identical_across_runs() {
    let a = faaspipe_json::to_string_pretty(&calibrate_once());
    let b = faaspipe_json::to_string_pretty(&calibrate_once());
    assert_eq!(a, b, "same probes must serialize byte-identically");
    assert!(a.contains("store_latency_s"));
}

#[test]
fn calibration_fits_simulator_constants() {
    let cal = calibrate_once();
    assert!(cal.evidence.store_requests > 0);
    assert!(cal.evidence.cold_starts > 0);
    // The simulator charges 28 ms first-byte latency and an 80 MiB/s
    // function NIC; the fit must land on that line, not the defaults.
    assert!((cal.params.store_latency_s - 0.028).abs() < 0.005);
    let mib = 1024.0 * 1024.0;
    assert!((cal.params.store_conn_bps / mib - 80.0).abs() < 2.0);
    assert!((cal.params.orchestration_s - 8.0).abs() < 0.1);
}

fn auto_outcome() -> (f64, String, TraceData) {
    let mut cfg = quick_cfg();
    cfg.workers = WorkerChoice::Auto;
    cfg.exchange = ExchangeKind::Auto;
    cfg.trace = true;
    let outcome = run_methcomp_pipeline(&cfg).expect("auto run");
    assert!(outcome.verified, "auto-planned run must verify");
    (
        outcome.latency.as_secs_f64(),
        outcome.tracker_log.clone(),
        outcome.trace,
    )
}

#[test]
fn auto_runs_are_deterministic_and_record_their_pick() {
    let (lat_a, log_a, trace) = auto_outcome();
    let (lat_b, log_b, _) = auto_outcome();
    assert_eq!(lat_a, lat_b, "auto planning must be deterministic");
    assert_eq!(log_a, log_b);
    assert!(
        log_a.contains("planner picked W="),
        "tracker must log the pick: {}",
        log_a
    );

    let span = trace
        .spans
        .iter()
        .find(|s| s.category == Category::Planner)
        .expect("auto run records a planner span");
    let attr = |key: &str| span.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    let workers = match attr("workers") {
        Some(Value::U64(w)) => *w as usize,
        other => panic!("workers attr: {:?}", other),
    };
    assert!(workers >= 2, "planner must pick a real fleet width");
    match attr("exchange") {
        Some(Value::Str(s)) => {
            let kind: ExchangeKind = s.parse().expect("recorded backend parses back");
            assert_ne!(kind, ExchangeKind::Auto, "the pick is always concrete");
        }
        other => panic!("exchange attr: {:?}", other),
    }
    assert!(attr("predicted_makespan_s").is_some());
    assert!(attr("evaluated").is_some());
}

#[test]
fn explicit_backends_are_untouched_by_the_planner_path() {
    // A fixed configuration must not consult the planner at all: no
    // planner span, no tracker note, same latency as before the planner
    // existed (the golden tests pin the exact value; here we pin the
    // absence of planning).
    let mut cfg = quick_cfg();
    cfg.workers = WorkerChoice::Fixed(8);
    cfg.exchange = ExchangeKind::Scatter;
    cfg.trace = true;
    let outcome = run_methcomp_pipeline(&cfg).expect("fixed run");
    assert!(outcome.verified);
    assert!(
        !outcome
            .trace
            .spans
            .iter()
            .any(|s| s.category == Category::Planner),
        "explicit backends must not invoke the planner"
    );
    assert!(!outcome.tracker_log.contains("planner picked"));
}

#[test]
fn json_spec_auto_drives_the_planner() {
    const SPEC: &str = r#"{
        "name": "methcomp-auto",
        "bucket": "data",
        "stages": [
            { "name": "sort", "kind": "shuffle_sort",
              "exchange": "auto", "input": "in/", "output": "sorted/" },
            { "name": "encode", "kind": "encode", "codec": "methcomp",
              "workers": 4, "input": "sorted/", "output": "enc/",
              "deps": ["sort"] }
        ]
    }"#;
    let dag = PipelineSpec::from_json(SPEC)
        .expect("parse")
        .to_dag()
        .expect("dag");
    let sort = dag
        .stages()
        .iter()
        .find(|s| s.name == "sort")
        .expect("sort stage");
    match &sort.kind {
        faaspipe::core::dag::StageKind::ShuffleSort {
            workers, exchange, ..
        } => {
            assert_eq!(*exchange, ExchangeKind::Auto);
            assert_eq!(*workers, WorkerChoice::Auto);
        }
        other => panic!("unexpected stage kind: {:?}", other),
    }
}

#[test]
fn spec_rejects_unknown_exchange_with_the_valid_forms() {
    const SPEC: &str = r#"{
        "name": "bad",
        "bucket": "data",
        "stages": [
            { "name": "sort", "kind": "shuffle_sort",
              "exchange": "carrier-pigeon", "input": "in/", "output": "s/" }
        ]
    }"#;
    let err = PipelineSpec::from_json(SPEC)
        .expect("parse")
        .to_dag()
        .expect_err("unknown backend must be rejected");
    let msg = err.to_string();
    assert!(
        msg.contains("carrier-pigeon"),
        "names the offender: {}",
        msg
    );
    assert!(msg.contains("auto"), "lists the valid forms: {}", msg);
}
