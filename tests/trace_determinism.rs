//! Trace determinism and critical-path invariants across the full
//! Table-1 pipeline: identical seeds must yield byte-identical exports,
//! and the makespan attribution must tile the run span exactly.

use faaspipe::core::pipeline::{run_methcomp_pipeline, PipelineConfig, PipelineMode};
use faaspipe::trace::{
    chrome_trace_json, counters_csv, critical_path, render_timeline, Category, TraceData,
};

fn traced(mode: PipelineMode) -> TraceData {
    let mut cfg = PipelineConfig::paper_table1();
    cfg.mode = mode;
    cfg.physical_records = 15_000;
    cfg.trace = true;
    run_methcomp_pipeline(&cfg).expect("pipeline ok").trace
}

#[test]
fn same_seed_table1_runs_export_byte_identical_traces() {
    for mode in [PipelineMode::PureServerless, PipelineMode::VmHybrid] {
        let a = traced(mode);
        let b = traced(mode);
        assert_eq!(
            chrome_trace_json(&a),
            chrome_trace_json(&b),
            "{:?}: chrome export must be byte-identical",
            mode
        );
        assert_eq!(counters_csv(&a), counters_csv(&b));
        assert_eq!(render_timeline(&a), render_timeline(&b));
    }
}

#[test]
fn critical_path_durations_sum_to_the_makespan() {
    for mode in [PipelineMode::PureServerless, PipelineMode::VmHybrid] {
        let data = traced(mode);
        let run = data.run_span().expect("run span");
        let breakdown = critical_path(&data).expect("breakdown");
        assert_eq!(
            breakdown.total(),
            breakdown.makespan,
            "{:?}: buckets must tile the makespan to the nanosecond",
            mode
        );
        assert_eq!(
            breakdown.makespan,
            run.duration().expect("closed run span"),
            "{:?}: attribution window is the run span",
            mode
        );
    }
}

#[test]
fn traced_table1_covers_both_data_exchange_paths() {
    let pure = traced(PipelineMode::PureServerless);
    assert!(pure
        .spans
        .iter()
        .any(|s| s.category == Category::Invocation));
    assert!(!pure.spans.iter().any(|s| s.category == Category::VmTask));
    assert!(pure.counter("faas.running_containers").is_some());
    assert!(pure.counter("store.inflight_flows").is_some());

    let hybrid = traced(PipelineMode::VmHybrid);
    assert!(hybrid.spans.iter().any(|s| s.category == Category::VmTask));
    assert!(hybrid.counter("vm.active").is_some());

    // Merging the two topologies keeps every span addressable under a
    // prefixed track, as the Figure-1 artifact relies on.
    let merged = TraceData::merged(&[("A", &hybrid), ("B", &pure)]);
    assert_eq!(merged.spans.len(), hybrid.spans.len() + pure.spans.len());
    assert!(merged
        .spans
        .iter()
        .all(|s| { s.track.starts_with("A/") || s.track.starts_with("B/") }));
    let json = chrome_trace_json(&merged);
    let parsed: faaspipe_json::Json = json.parse().expect("merged export is valid JSON");
    assert!(parsed.get("traceEvents").is_some());
}
