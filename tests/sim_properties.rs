//! Property-based tests of the simulation kernel: clock monotonicity,
//! determinism, conservation in the fluid-flow network, and unit
//! arithmetic.

use std::sync::{Arc, Mutex};

use proptest::collection::vec;
use proptest::prelude::*;

use faaspipe::des::{Bandwidth, ByteSize, Money, Sim, SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any set of sleeping processes finishes at exactly the max sleep,
    /// and every observed timestamp is monotone in the event order.
    #[test]
    fn clock_is_monotone_under_random_sleeps(delays in vec(0u64..10_000, 1..40)) {
        let observed = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Sim::new();
        for (i, &ms) in delays.iter().enumerate() {
            let observed = Arc::clone(&observed);
            sim.spawn(format!("p{}", i), move |ctx| {
                ctx.sleep(SimDuration::from_millis(ms));
                observed.lock().unwrap().push(ctx.now());
            });
        }
        let report = sim.run().expect("sim ok");
        let times = observed.lock().unwrap().clone();
        prop_assert!(times.windows(2).all(|w| w[0] <= w[1]), "monotone wakeups");
        let max = delays.iter().copied().max().expect("non-empty");
        prop_assert_eq!(report.end_time, SimTime::ZERO + SimDuration::from_millis(max));
    }

    /// Two runs of the same random workload produce identical traces.
    #[test]
    fn simulations_are_deterministic(delays in vec(0u64..5_000, 1..24)) {
        fn trace(delays: &[u64]) -> Vec<(usize, u64)> {
            let observed = Arc::new(Mutex::new(Vec::new()));
            let mut sim = Sim::new();
            for (i, &ms) in delays.iter().enumerate() {
                let observed = Arc::clone(&observed);
                sim.spawn(format!("p{}", i), move |ctx| {
                    ctx.sleep(SimDuration::from_millis(ms % 97));
                    ctx.sleep(SimDuration::from_millis(ms % 13));
                    observed.lock().unwrap().push((i, ctx.now().as_nanos()));
                });
            }
            sim.run().expect("sim ok");
            let t = observed.lock().unwrap().clone();
            t
        }
        prop_assert_eq!(trace(&delays), trace(&delays));
    }

    /// A shared link is work-conserving: n equal transfers through one
    /// link finish in exactly n times the single-transfer duration, and
    /// never faster than bytes/capacity.
    #[test]
    fn fair_sharing_conserves_work(n in 1usize..12, kib in 1u64..256) {
        let mut sim = Sim::new();
        let link = sim.create_link(Bandwidth::bytes_per_sec(1_000_000.0));
        for i in 0..n {
            sim.spawn(format!("t{}", i), move |ctx| {
                ctx.transfer(ByteSize::kib(kib), &[link]);
            });
        }
        let report = sim.run().expect("sim ok");
        let expected = (n as f64 * kib as f64 * 1024.0) / 1_000_000.0;
        let got = report.end_time.as_secs_f64();
        prop_assert!((got - expected).abs() < expected * 1e-6 + 1e-6,
            "{} transfers of {} KiB: got {}, expected {}", n, kib, got, expected);
    }

    /// FIFO semaphores serialize a critical section: with one permit the
    /// k-th entrant starts exactly k hold-times in.
    #[test]
    fn semaphore_is_fair_and_exact(n in 1usize..16, hold_ms in 1u64..500) {
        let entries = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Sim::new();
        let sem = sim.create_semaphore(1);
        for i in 0..n {
            let entries = Arc::clone(&entries);
            sim.spawn(format!("w{}", i), move |ctx| {
                ctx.sem_acquire(sem, 1);
                entries.lock().unwrap().push((i, ctx.now().as_nanos()));
                ctx.sleep(SimDuration::from_millis(hold_ms));
                ctx.sem_release(sem, 1);
            });
        }
        sim.run().expect("sim ok");
        let entries = entries.lock().unwrap().clone();
        for (k, &(who, at)) in entries.iter().enumerate() {
            prop_assert_eq!(who, k, "FIFO order");
            prop_assert_eq!(at, k as u64 * hold_ms * 1_000_000, "exact spacing");
        }
    }

    /// Money arithmetic is exact and associative over micro-dollars.
    #[test]
    fn money_is_exact(amounts in vec(-1_000_000i64..1_000_000, 0..64)) {
        let sum_micros: i64 = amounts.iter().sum();
        let total: Money = amounts.iter().map(|&a| Money::from_micros(a)).sum();
        prop_assert_eq!(total.as_micros(), sum_micros);
        // Display/parse sanity: dollars round-trip through from_dollars.
        let again = Money::from_dollars(total.as_dollars());
        prop_assert_eq!(again, total);
    }

    /// Durations: saturating ops never panic and ordering matches nanos.
    #[test]
    fn duration_ordering_matches_nanos(a in any::<u64>(), b in any::<u64>()) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        prop_assert_eq!(da < db, a < b);
        prop_assert_eq!(da.saturating_add(db).as_nanos(), a.saturating_add(b));
        prop_assert_eq!(da.max(db).as_nanos(), a.max(b));
    }
}

/// Rate limiter: k ops at rate r take exactly (k - burst)/r seconds
/// beyond the burst.
#[test]
fn limiter_long_run_rate_is_exact() {
    let mut sim = Sim::new();
    let lim = sim.create_limiter(100.0, 10.0);
    sim.spawn("client", move |ctx| {
        for _ in 0..510 {
            ctx.limiter_acquire(lim, 1.0);
        }
    });
    let report = sim.run().expect("sim ok");
    // 510 ops: 10 ride the initial burst, 500 at 100/s => 5 s.
    assert!((report.end_time.as_secs_f64() - 5.0).abs() < 1e-3);
}
