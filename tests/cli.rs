//! Integration tests of the `faaspipe` CLI binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_faaspipe"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("faaspipe-cli-tests");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(name)
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("--help").output().expect("run");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage:"));
}

#[test]
fn unknown_command_fails() {
    let out = bin().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn synth_compress_decompress_round_trip() {
    let bed = tmp("rt.bed");
    let mc = tmp("rt.mc");
    let back = tmp("rt.back.bed");
    let out = bin()
        .args(["synth", "--records", "5000", "--out"])
        .arg(&bed)
        .args(["--seed", "3"])
        .output()
        .expect("synth");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin()
        .arg("compress")
        .arg(&bed)
        .arg(&mc)
        .output()
        .expect("compress");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let packed = std::fs::metadata(&mc).expect("archive").len();
    let original = std::fs::metadata(&bed).expect("bed").len();
    assert!(
        packed * 5 < original,
        "must compress well: {} vs {}",
        packed,
        original
    );

    let out = bin()
        .arg("decompress")
        .arg(&mc)
        .arg(&back)
        .output()
        .expect("decompress");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let a = std::fs::read(&bed).expect("bed");
    let b = std::fs::read(&back).expect("back");
    assert_eq!(a, b, "byte-exact text round trip");
}

#[test]
fn compress_rejects_malformed_bed() {
    let bad = tmp("bad.bed");
    std::fs::write(&bad, "this is not bed\n").expect("write");
    let out = bin()
        .arg("compress")
        .arg(&bad)
        .arg(tmp("bad.mc"))
        .output()
        .expect("compress");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}

#[test]
fn index_and_query_round_trip() {
    let bed = tmp("iq.bed");
    let mcx = tmp("iq.mcx");
    let out = bin()
        .args(["synth", "--records", "20000", "--out"])
        .arg(&bed)
        .args(["--seed", "9"])
        .output()
        .expect("synth");
    assert!(out.status.success());
    let out = bin()
        .arg("index")
        .arg(&bed)
        .arg(&mcx)
        .output()
        .expect("index");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = bin()
        .arg("query")
        .arg(&mcx)
        .args(["chr1", "0", "400000"])
        .output()
        .expect("query");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let hits = text.lines().count();
    assert!(hits > 0, "window must contain records");
    assert!(text.lines().all(|l| l.starts_with("chr1\t")));
    // Records are valid bedMethyl and inside the window.
    for line in text.lines() {
        let cols: Vec<&str> = line.split('\t').collect();
        let start: u64 = cols[1].parse().expect("start");
        assert!(start < 400_000);
    }
    // Unknown chromosome errors cleanly.
    let out = bin()
        .arg("query")
        .arg(&mcx)
        .args(["chrMT", "0", "10"])
        .output()
        .expect("query");
    assert!(!out.status.success());
}

#[test]
fn tune_recommends_workers() {
    let out = bin().args(["tune", "--gb", "3.5"]).output().expect("tune");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("recommended workers"));
    assert!(text.contains("modelled makespan"));
}

#[test]
fn run_executes_a_spec_file() {
    let spec = tmp("spec.json");
    std::fs::write(
        &spec,
        r#"{
            "name": "cli-test", "bucket": "data",
            "stages": [
                { "name": "sort", "kind": "shuffle_sort", "workers": 2,
                  "exchange": "coalesced", "input": "in/", "output": "sorted/" },
                { "name": "encode", "kind": "encode", "codec": "methcomp",
                  "workers": 2, "input": "sorted/", "output": "enc/",
                  "deps": ["sort"] }
            ]
        }"#,
    )
    .expect("write spec");
    let out = bin()
        .arg("run")
        .arg(&spec)
        .args(["--records", "4000"])
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("stage 'sort'"));
    assert!(text.contains("stage 'encode'"));
    assert!(text.contains("TOTAL"));
}

#[test]
fn table1_accepts_an_exchange_backend() {
    let out = bin()
        .args(["table1", "--records", "4000", "--exchange", "vm_relay"])
        .output()
        .expect("table1");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("Purely"));

    let out = bin()
        .args(["table1", "--exchange", "carrier_pigeon"])
        .output()
        .expect("table1");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--exchange"));
}

#[test]
fn table1_jobs_flag_is_output_invariant() {
    // The two pipeline modes run as sweep cells; the rendered table
    // (stdout) must not depend on the job count.
    let serial = bin()
        .args(["table1", "--records", "4000", "--jobs", "1"])
        .output()
        .expect("table1 --jobs 1");
    assert!(
        serial.status.success(),
        "{}",
        String::from_utf8_lossy(&serial.stderr)
    );
    let parallel = bin()
        .args(["table1", "--records", "4000", "--jobs", "4"])
        .output()
        .expect("table1 --jobs 4");
    assert!(
        parallel.status.success(),
        "{}",
        String::from_utf8_lossy(&parallel.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&serial.stdout),
        String::from_utf8_lossy(&parallel.stdout),
        "table must be byte-identical at any --jobs"
    );

    let out = bin()
        .args(["table1", "--jobs", "0"])
        .output()
        .expect("table1 --jobs 0");
    assert!(!out.status.success(), "--jobs 0 must be rejected");
    assert!(String::from_utf8_lossy(&out.stderr).contains("jobs"));
}

#[test]
fn table1_accepts_a_parameterized_sharded_exchange() {
    let out = bin()
        .args([
            "table1",
            "--records",
            "4000",
            "--exchange",
            "sharded_relay:2:prewarm",
        ])
        .output()
        .expect("table1");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("Purely"));

    let out = bin()
        .args(["table1", "--exchange", "sharded_relay:0"])
        .output()
        .expect("table1");
    assert!(!out.status.success(), "zero shards must be rejected");
}

#[test]
fn run_executes_a_spec_with_a_direct_exchange() {
    let spec = tmp("spec-direct.json");
    std::fs::write(
        &spec,
        r#"{
            "name": "cli-direct", "bucket": "data",
            "stages": [
                { "name": "sort", "kind": "shuffle_sort", "workers": 2,
                  "exchange": "direct", "input": "in/", "output": "sorted/" }
            ]
        }"#,
    )
    .expect("write spec");
    let out = bin()
        .arg("run")
        .arg(&spec)
        .args(["--records", "4000"])
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("stage 'sort'"));
}

#[test]
fn run_rejects_bad_spec() {
    let spec = tmp("bad-spec.json");
    std::fs::write(&spec, "{\"name\": \"x\"").expect("write");
    let out = bin().arg("run").arg(&spec).output().expect("run");
    assert!(!out.status.success());
}

#[test]
fn cluster_runs_a_small_multi_tenant_simulation() {
    let out = bin()
        .args([
            "cluster",
            "--tenants",
            "2",
            "--rate",
            "0.02",
            "--horizon",
            "150",
            "--records",
            "2000",
        ])
        .output()
        .expect("cluster");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cluster:"));
    assert!(stdout.contains("t0"));
    assert!(stdout.contains("t1"));
    assert!(stdout.contains("TOTAL"));
}

#[test]
fn cluster_accepts_an_arrival_trace_and_streams_a_trace_file() {
    let arrivals = tmp("arrivals.txt");
    std::fs::write(&arrivals, "# t tenant\n0 0\n2.5 1\n5 0\n").expect("write arrivals");
    let trace = tmp("cluster-trace.jsonl");
    let out = bin()
        .arg("cluster")
        .args(["--tenants", "2", "--records", "2000", "--arrivals"])
        .arg(&arrivals)
        .arg("--stream-trace")
        .arg(&trace)
        .output()
        .expect("cluster");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("3 submitted"));
    let streamed = std::fs::read_to_string(&trace).expect("trace file");
    assert!(streamed.lines().count() > 10, "trace must hold JSONL lines");
    assert!(streamed.contains("\"t0/r0\""));
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn cluster_rejects_bad_flags() {
    let out = bin()
        .args(["cluster", "--tenants", "0"])
        .output()
        .expect("cluster");
    assert!(!out.status.success());

    let out = bin()
        .args(["cluster", "--max-concurrent", "banana"])
        .output()
        .expect("cluster");
    assert!(!out.status.success());
}
