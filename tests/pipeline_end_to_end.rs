//! Cross-crate integration tests: the full METHCOMP pipeline through the
//! public API, both Figure-1 incarnations, driven natively and from JSON
//! specs.

use bytes::Bytes;

use faaspipe::core::executor::{Executor, Services};
use faaspipe::core::pipeline::{run_methcomp_pipeline, PipelineConfig, PipelineMode};
use faaspipe::core::pricing::PriceBook;
use faaspipe::core::spec::PipelineSpec;
use faaspipe::core::tracker::Tracker;
use faaspipe::core::WorkerChoice;
use faaspipe::des::{Money, Sim};
use faaspipe::faas::{FaasConfig, FunctionPlatform};
use faaspipe::methcomp::codec as mc;
use faaspipe::methcomp::synth::Synthesizer;
use faaspipe::methcomp::MethRecord;
use faaspipe::shuffle::{SortRecord, WorkModel};
use faaspipe::store::{ObjectStore, StoreConfig};
use faaspipe::vm::VmFleet;

fn quick(mode: PipelineMode) -> PipelineConfig {
    let mut cfg = PipelineConfig::paper_table1();
    cfg.mode = mode;
    cfg.physical_records = 15_000;
    cfg
}

#[test]
fn table1_shape_holds_end_to_end() {
    let pure = run_methcomp_pipeline(&quick(PipelineMode::PureServerless)).expect("pure");
    let hybrid = run_methcomp_pipeline(&quick(PipelineMode::VmHybrid)).expect("hybrid");
    // The paper's headline: serverless wins clearly on latency, costs are
    // the same order of magnitude with the VM slightly more expensive.
    assert!(pure.latency.as_secs_f64() * 1.4 < hybrid.latency.as_secs_f64());
    assert!(pure.cost.total() < hybrid.cost.total());
    assert!(hybrid.cost.total() < pure.cost.total() * 3);
    assert!(pure.verified && hybrid.verified);
}

#[test]
fn outputs_decode_to_the_sorted_input_via_public_codec() {
    let cfg = quick(PipelineMode::PureServerless);
    let outcome = run_methcomp_pipeline(&cfg).expect("pipeline");
    assert!(outcome.verified);
    assert!(outcome.compression_ratio_text > 10.0);
    assert!(outcome.modeled_output_bytes < outcome.modeled_input_bytes / 4);
}

#[test]
fn autotuned_pipeline_runs() {
    let mut cfg = quick(PipelineMode::PureServerless);
    cfg.workers = WorkerChoice::Auto;
    let outcome = run_methcomp_pipeline(&cfg).expect("pipeline");
    assert!(outcome.verified);
    assert!(outcome.sort_workers >= 1);
    assert!(outcome.tracker_log.contains("autotuner picked"));
}

#[test]
fn identical_configs_are_bit_identical() {
    let a = run_methcomp_pipeline(&quick(PipelineMode::VmHybrid)).expect("a");
    let b = run_methcomp_pipeline(&quick(PipelineMode::VmHybrid)).expect("b");
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.cost.total(), b.cost.total());
    assert_eq!(a.tracker_log, b.tracker_log);
}

#[test]
fn json_spec_drives_the_same_pipeline() {
    const SPEC: &str = r#"{
        "name": "methcomp-from-json",
        "bucket": "data",
        "stages": [
            { "name": "sort", "kind": "shuffle_sort", "workers": 4,
              "input": "in/", "output": "sorted/" },
            { "name": "encode", "kind": "encode", "codec": "methcomp",
              "workers": 4, "input": "sorted/", "output": "enc/",
              "deps": ["sort"] }
        ]
    }"#;
    let dag = PipelineSpec::from_json(SPEC)
        .expect("parse")
        .to_dag()
        .expect("dag");

    let mut sim = Sim::new();
    let store = ObjectStore::install(&mut sim, StoreConfig::default());
    let faas = FunctionPlatform::install(&mut sim, FaasConfig::default());
    let fleet = VmFleet::new();
    store.create_bucket("data").expect("bucket");
    let dataset = Synthesizer::new(99).generate_shuffled(8_000);
    for (i, chunk) in dataset.records.chunks(2_000).enumerate() {
        store
            .put_untimed(
                "data",
                &format!("in/{:04}", i),
                Bytes::from(SortRecord::write_all(chunk)),
            )
            .expect("stage input");
    }
    let tracker = Tracker::new();
    let executor = Executor::new(
        Services {
            store: store.clone(),
            faas: faas.clone(),
            fleet: fleet.clone(),
        },
        WorkModel::default(),
        tracker.clone(),
    );
    let handle = executor.spawn_dag(&mut sim, &dag);
    let report = sim.run().expect("sim");
    handle.ok_results().expect("stages ok");

    // Verify: every archive decodes, concatenation equals sorted input.
    let mut expect = dataset.clone();
    expect.sort();
    let mut all: Vec<MethRecord> = Vec::new();
    for key in store.keys_untimed("data", "sorted/") {
        let run = store.peek("data", &key).expect("run");
        let records: Vec<MethRecord> = SortRecord::read_all(&run).expect("decode");
        let leaf = key.trim_start_matches("sorted/");
        let archive = store
            .peek("data", &format!("enc/{}", leaf))
            .expect("archive");
        let decoded = mc::decompress(&archive).expect("lossless");
        assert_eq!(decoded.records, records);
        all.extend(records);
    }
    assert_eq!(all, expect.records);

    // Cost report is itemized per stage, named from the spec.
    let cost = PriceBook::default().assemble(
        &faas.records(),
        &store.metrics(),
        &fleet.records(),
        report.end_time,
    );
    assert!(cost.by_stage.contains_key("sort"));
    assert!(cost.by_stage.contains_key("encode"));
    assert!(cost.total() > Money::ZERO);
}

#[test]
fn gzip_encode_pipeline_spec_also_runs() {
    const SPEC: &str = r#"{
        "name": "gzip-baseline",
        "bucket": "data",
        "stages": [
            { "name": "sort", "kind": "shuffle_sort", "workers": 2,
              "input": "in/", "output": "sorted/" },
            { "name": "encode", "kind": "encode", "codec": "gzipish",
              "workers": 2, "input": "sorted/", "output": "enc/",
              "deps": ["sort"] }
        ]
    }"#;
    let dag = PipelineSpec::from_json(SPEC)
        .expect("parse")
        .to_dag()
        .expect("dag");
    let mut sim = Sim::new();
    let store = ObjectStore::install(&mut sim, StoreConfig::default());
    let faas = FunctionPlatform::install(&mut sim, FaasConfig::default());
    store.create_bucket("data").expect("bucket");
    let dataset = Synthesizer::new(5).generate_shuffled(4_000);
    for (i, chunk) in dataset.records.chunks(2_000).enumerate() {
        store
            .put_untimed(
                "data",
                &format!("in/{:04}", i),
                Bytes::from(SortRecord::write_all(chunk)),
            )
            .expect("stage input");
    }
    let executor = Executor::new(
        Services {
            store: store.clone(),
            faas,
            fleet: VmFleet::new(),
        },
        WorkModel::default(),
        Tracker::new(),
    );
    let handle = executor.spawn_dag(&mut sim, &dag);
    sim.run().expect("sim");
    handle.ok_results().expect("stages ok");
    // gzipish archives decompress to the sorted runs' text.
    for key in store.keys_untimed("data", "sorted/") {
        let run = store.peek("data", &key).expect("run");
        let records: Vec<MethRecord> = SortRecord::read_all(&run).expect("decode");
        let text = faaspipe::methcomp::Dataset::new(records).to_text();
        let leaf = key.trim_start_matches("sorted/");
        let archive = store
            .peek("data", &format!("enc/{}", leaf))
            .expect("archive");
        let unpacked = faaspipe::codec::gzipish::decompress(&archive).expect("gz");
        assert_eq!(unpacked, text.as_bytes());
    }
}
