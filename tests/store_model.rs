//! Model-based testing of the object store: a random sequence of
//! operations is applied both to the simulated store (inside a sim) and
//! to a plain `BTreeMap` reference model; every observable result must
//! agree.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use proptest::collection::vec;
use proptest::prelude::*;

use faaspipe::des::Sim;
use faaspipe::store::{ObjectStore, StoreConfig, StoreError};

/// The operations the model covers.
#[derive(Debug, Clone)]
enum Op {
    Put(u8, Vec<u8>),
    PutIfAbsent(u8, Vec<u8>),
    Get(u8),
    Head(u8),
    Delete(u8),
    List(u8),
    Range(u8, u8, u8),
}

fn key(k: u8) -> String {
    format!("k/{:03}", k % 24)
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), vec(any::<u8>(), 0..64)).prop_map(|(k, d)| Op::Put(k, d)),
        (any::<u8>(), vec(any::<u8>(), 0..64)).prop_map(|(k, d)| Op::PutIfAbsent(k, d)),
        any::<u8>().prop_map(Op::Get),
        any::<u8>().prop_map(Op::Head),
        any::<u8>().prop_map(Op::Delete),
        any::<u8>().prop_map(Op::List),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(k, o, l)| Op::Range(k, o, l)),
    ]
}

/// Observable outcome of one op, comparable across implementations.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Observed {
    Bytes(Option<Vec<u8>>),
    Exists(bool),
    Created(bool),
    Keys(Vec<String>),
    Unit,
}

fn run_reference(ops: &[Op]) -> Vec<Observed> {
    let mut state: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    let mut out = Vec::with_capacity(ops.len());
    for op in ops {
        out.push(match op {
            Op::Put(k, d) => {
                state.insert(key(*k), d.clone());
                Observed::Unit
            }
            Op::PutIfAbsent(k, d) => {
                let k = key(*k);
                if let std::collections::btree_map::Entry::Vacant(e) = state.entry(k) {
                    e.insert(d.clone());
                    Observed::Created(true)
                } else {
                    Observed::Created(false)
                }
            }
            Op::Get(k) => Observed::Bytes(state.get(&key(*k)).cloned()),
            Op::Head(k) => Observed::Exists(state.contains_key(&key(*k))),
            Op::Delete(k) => {
                state.remove(&key(*k));
                Observed::Unit
            }
            Op::List(prefix_k) => {
                let prefix = format!("k/{:01}", prefix_k % 10);
                Observed::Keys(
                    state
                        .keys()
                        .filter(|k| k.starts_with(&prefix))
                        .cloned()
                        .collect(),
                )
            }
            Op::Range(k, off, len) => {
                let k = key(*k);
                match state.get(&k) {
                    None => Observed::Bytes(None),
                    Some(d) => {
                        let off = *off as usize;
                        let len = *len as usize;
                        if off + len <= d.len() {
                            Observed::Bytes(Some(d[off..off + len].to_vec()))
                        } else {
                            Observed::Bytes(None) // invalid range
                        }
                    }
                }
            }
        });
    }
    out
}

fn run_simulated(ops: Vec<Op>) -> Vec<Observed> {
    let mut sim = Sim::new();
    let store = ObjectStore::install(&mut sim, StoreConfig::default());
    store.create_bucket("b").expect("bucket");
    let out: Arc<Mutex<Vec<Observed>>> = Arc::new(Mutex::new(Vec::new()));
    let out2 = Arc::clone(&out);
    let store2 = Arc::clone(&store);
    sim.spawn("model", move |ctx| {
        let c = store2.connect(ctx, "model");
        for op in &ops {
            let obs = match op {
                Op::Put(k, d) => {
                    c.put(ctx, "b", &key(*k), Bytes::from(d.clone()))
                        .expect("put");
                    Observed::Unit
                }
                Op::PutIfAbsent(k, d) => {
                    match c.put_if_absent(ctx, "b", &key(*k), Bytes::from(d.clone())) {
                        Ok(_) => Observed::Created(true),
                        Err(StoreError::PreconditionFailed { .. }) => Observed::Created(false),
                        Err(e) => panic!("unexpected: {}", e),
                    }
                }
                Op::Get(k) => match c.get(ctx, "b", &key(*k)) {
                    Ok(d) => Observed::Bytes(Some(d.to_vec())),
                    Err(StoreError::NoSuchKey { .. }) => Observed::Bytes(None),
                    Err(e) => panic!("unexpected: {}", e),
                },
                Op::Head(k) => Observed::Exists(c.exists(ctx, "b", &key(*k)).expect("head")),
                Op::Delete(k) => {
                    c.delete(ctx, "b", &key(*k)).expect("delete");
                    Observed::Unit
                }
                Op::List(prefix_k) => {
                    let prefix = format!("k/{:01}", prefix_k % 10);
                    Observed::Keys(
                        c.list(ctx, "b", &prefix)
                            .expect("list")
                            .into_iter()
                            .map(|o| o.key)
                            .collect(),
                    )
                }
                Op::Range(k, off, len) => {
                    match c.get_range(ctx, "b", &key(*k), *off as u64, *len as u64) {
                        Ok(d) => Observed::Bytes(Some(d.to_vec())),
                        Err(StoreError::NoSuchKey { .. })
                        | Err(StoreError::InvalidRange { .. }) => Observed::Bytes(None),
                        Err(e) => panic!("unexpected: {}", e),
                    }
                }
            };
            out2.lock().push(obs);
        }
    });
    sim.run().expect("sim ok");
    let v = out.lock().clone();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn store_agrees_with_reference_model(ops in vec(arb_op(), 1..60)) {
        let expected = run_reference(&ops);
        let actual = run_simulated(ops);
        prop_assert_eq!(actual, expected);
    }
}
