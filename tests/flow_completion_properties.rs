//! Property tests pinning the flow network's incremental
//! earliest-completion index to the reference full scan.
//!
//! [`FlowNet::next_completion`] answers the scheduler's "when does the
//! next transfer finish?" in O(1) by folding each flow's completion
//! deadline into a maintained minimum during `recompute`.
//! [`FlowNet::next_completion_reference`] is the original O(flows) scan,
//! kept as the oracle. These tests drive random interleavings of flow
//! starts, arbitrary-time ticks, and scheduler-style
//! advance-to-completion ticks over random topologies, asserting the two
//! agree (to the nanosecond) after every operation and across a full
//! drain to quiescence.

use proptest::collection::vec;
use proptest::prelude::*;

use faaspipe::des::flow::FlowNet;
use faaspipe::des::{Bandwidth, ByteSize, FlowSpec, LinkId, SimDuration, SimTime};

// Ops are `(kind, bytes, link-bits, dt)` tuples: kind 0 starts a flow,
// kind 1 advances an arbitrary `dt` and ticks, kind 2 advances exactly
// to the predicted completion and ticks (the scheduler's own pattern,
// which exercises the O(1) fast path at the same timestamp as the
// preceding settle).

fn non_empty_subset(links: &[LinkId], bits: u8) -> Vec<LinkId> {
    let picked: Vec<LinkId> = links
        .iter()
        .enumerate()
        .filter(|&(i, _)| (bits >> (i % 8)) & 1 == 1)
        .map(|(_, &l)| l)
        .collect();
    if picked.is_empty() {
        vec![links[bits as usize % links.len()]]
    } else {
        picked
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After every start/tick — and at every step of a drain to
    /// quiescence — the incremental index and the reference scan return
    /// the same completion instant.
    #[test]
    fn incremental_next_completion_matches_reference_scan(
        caps in vec(1u64..=4096, 1..6),
        ops in vec((0u8..3, 1u64..=1 << 28, any::<u8>(), 1u64..50_000_000), 1..80),
    ) {
        let mut net = FlowNet::new();
        let mut links: Vec<LinkId> = caps
            .iter()
            .map(|&c| net.add_link(Bandwidth::mib_per_sec(c as f64 / 16.0)))
            .collect();
        // One infinite-capacity link so some subsets yield unbounded
        // (immediately-completing) flows — the ZERO-delay edge case.
        links.push(net.add_link(Bandwidth::UNLIMITED));

        let mut now = SimTime::ZERO;
        let mut woken = Vec::new();
        let mut waker = 0u32;
        for &(kind, bytes, bits, dt) in &ops {
            match kind {
                0 => {
                    let spec = FlowSpec {
                        bytes: ByteSize::new(bytes),
                        links: non_empty_subset(&links, bits),
                    };
                    net.start(now, spec, waker);
                    waker += 1;
                }
                1 => {
                    now = now.saturating_add(SimDuration::from_nanos(dt));
                    net.tick(now, &mut woken);
                }
                _ => {
                    if let Some(t) = net.next_completion(now) {
                        now = t;
                        net.tick(now, &mut woken);
                    }
                }
            }
            prop_assert_eq!(
                net.next_completion(now),
                net.next_completion_reference(now),
                "index diverged from reference after op ({}, {}, {}, {})",
                kind, bytes, bits, dt
            );
        }

        // Drain exactly as the scheduler does: jump to each predicted
        // completion and tick there until the network is quiet.
        let mut rounds = 0usize;
        while let Some(t) = net.next_completion(now) {
            prop_assert_eq!(Some(t), net.next_completion_reference(now));
            now = t;
            net.tick(now, &mut woken);
            prop_assert_eq!(
                net.next_completion(now),
                net.next_completion_reference(now),
                "index diverged from reference during drain"
            );
            rounds += 1;
            prop_assert!(rounds < 10_000, "drain did not converge");
        }
        prop_assert_eq!(net.active_flows(), 0, "drain left active flows");
    }

    /// Probing at a timestamp *between* events (where the cached minimum
    /// is measured from an older settle instant) must also agree with
    /// the scan — this exercises the fallback path's equivalence.
    #[test]
    fn off_schedule_probes_match_reference_scan(
        caps in vec(1u64..=1024, 1..4),
        starts in vec((1u64..=1 << 24, any::<u8>()), 1..20),
        probe_ns in vec(1u64..10_000_000, 1..20),
    ) {
        let mut net = FlowNet::new();
        let links: Vec<LinkId> = caps
            .iter()
            .map(|&c| net.add_link(Bandwidth::mib_per_sec(c as f64)))
            .collect();
        let mut now = SimTime::ZERO;
        for (i, &(bytes, bits)) in starts.iter().enumerate() {
            let spec = FlowSpec {
                bytes: ByteSize::new(bytes),
                links: non_empty_subset(&links, bits),
            };
            net.start(now, spec, i as u32);
        }
        for &ns in &probe_ns {
            let probe = now.saturating_add(SimDuration::from_nanos(ns));
            prop_assert_eq!(
                net.next_completion(probe),
                net.next_completion_reference(probe),
                "off-schedule probe diverged"
            );
        }
        let mut woken = Vec::new();
        let mut rounds = 0usize;
        while let Some(t) = net.next_completion(now) {
            now = t;
            net.tick(now, &mut woken);
            rounds += 1;
            prop_assert!(rounds < 10_000, "drain did not converge");
        }
        prop_assert_eq!(net.active_flows(), 0);
    }
}
