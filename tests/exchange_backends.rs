//! Cross-backend properties of the data-exchange subsystem: every
//! exchange backend must produce byte-identical sorted output for the
//! same input, and every backend must be trace-deterministic — two runs
//! with the same seed export byte-identical traces.

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use proptest::collection::vec;
use proptest::prelude::*;

use faaspipe::core::pipeline::{run_methcomp_pipeline, PipelineConfig, PipelineMode};
use faaspipe::des::{Money, Sim};
use faaspipe::exchange::{
    DataExchange, DirectConfig, DirectExchange, ExchangeKind, RelayConfig, ShardedRelayConfig,
    ShardedRelayExchange, VmRelayExchange,
};
use faaspipe::faas::{FaasConfig, FunctionPlatform};
use faaspipe::shuffle::{serverless_sort, SortConfig, SortRecord};
use faaspipe::store::{ObjectStore, StoreConfig};
use faaspipe::trace::{chrome_trace_json, counters_csv, Category};
use faaspipe::vm::VmFleet;

/// Runs the serverless sort through `kind` with the default I/O window
/// and returns the raw bytes of every sorted-run object, in run order.
fn run_bytes(kind: ExchangeKind, values: &[u64], chunks: usize, workers: usize) -> Vec<Bytes> {
    run_bytes_k(
        kind,
        values,
        chunks,
        workers,
        SortConfig::default().io_concurrency,
    )
}

/// [`run_bytes`] with an explicit per-function I/O window.
fn run_bytes_k(
    kind: ExchangeKind,
    values: &[u64],
    chunks: usize,
    workers: usize,
    io_concurrency: usize,
) -> Vec<Bytes> {
    let mut sim = Sim::new();
    let store = ObjectStore::install(&mut sim, StoreConfig::default());
    let faas = FunctionPlatform::install(&mut sim, FaasConfig::default());
    store.create_bucket("data").expect("bucket");
    let per = values.len().div_ceil(chunks).max(1);
    for (i, chunk) in values.chunks(per).enumerate() {
        store
            .put_untimed(
                "data",
                &format!("in/{:04}", i),
                Bytes::from(SortRecord::write_all(chunk)),
            )
            .expect("stage");
    }
    let backend: Option<Arc<dyn DataExchange>> = match kind {
        ExchangeKind::Scatter | ExchangeKind::Coalesced => None,
        ExchangeKind::VmRelay => Some(Arc::new(VmRelayExchange::new(
            VmFleet::new(),
            RelayConfig::default(),
        ))),
        ExchangeKind::Direct => Some(Arc::new(DirectExchange::new(DirectConfig::default()))),
        ExchangeKind::ShardedRelay { shards, prewarm } => {
            Some(Arc::new(ShardedRelayExchange::new(
                VmFleet::new(),
                ShardedRelayConfig {
                    relay: RelayConfig::default(),
                    shards,
                    prewarm,
                },
            )))
        }
        ExchangeKind::Auto => {
            unreachable!("auto resolves to a concrete backend before the sort runs")
        }
    };
    let out: Arc<Mutex<Vec<Bytes>>> = Arc::new(Mutex::new(Vec::new()));
    let out2 = Arc::clone(&out);
    let store2 = Arc::clone(&store);
    sim.spawn("driver", move |ctx| {
        let cfg = SortConfig {
            workers,
            exchange: kind.layout(),
            backend,
            io_concurrency,
            ..SortConfig::default()
        };
        let stats = serverless_sort::<u64>(ctx, &faas, &store2, &cfg).expect("sort");
        let client = store2.connect(ctx, "verify");
        for run in &stats.runs {
            out2.lock().push(client.get(ctx, "data", run).expect("run"));
        }
    });
    sim.run().expect("sim ok");
    let v = out.lock().clone();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any input, chunking, and worker count, every backend —
    /// sharded relays included, warm or cold — produces byte-identical
    /// sorted-run objects: the exchange is a pure transport, never a
    /// transform.
    #[test]
    fn all_backends_produce_byte_identical_sorted_output(
        values in vec(any::<u64>(), 1..2_000),
        chunks in 1usize..5,
        workers in 2usize..8,
    ) {
        let reference = run_bytes(ExchangeKind::Scatter, &values, chunks, workers);
        let mut expect = values.clone();
        expect.sort_unstable();
        let decoded: Vec<u64> = reference
            .iter()
            .flat_map(|b| <u64 as SortRecord>::read_all(b).expect("decode"))
            .collect();
        prop_assert_eq!(&decoded, &expect, "scatter output is a sorted permutation");
        for kind in [
            ExchangeKind::Coalesced,
            ExchangeKind::VmRelay,
            ExchangeKind::Direct,
            ExchangeKind::ShardedRelay { shards: 3, prewarm: false },
            ExchangeKind::ShardedRelay { shards: 2, prewarm: true },
        ] {
            let got = run_bytes(kind, &values, chunks, workers);
            prop_assert_eq!(
                &got,
                &reference,
                "{} must match the scatter byte stream",
                kind
            );
        }
    }
}

/// The I/O window is a schedule knob, not a data transform: whatever
/// `io_concurrency` each function runs with — strictly sequential,
/// moderately windowed, or far past saturation — every backend must
/// emit byte-identical sorted runs. Covers the windowed store reads,
/// the chunked mapper downloads, the fan-out exchange writes, and the
/// streaming reduce gather in one sweep.
#[test]
fn io_window_never_changes_output_bytes() {
    let values: Vec<u64> = (0..3_000u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
    for kind in [
        ExchangeKind::Scatter,
        ExchangeKind::Coalesced,
        ExchangeKind::VmRelay,
        ExchangeKind::Direct,
        ExchangeKind::ShardedRelay {
            shards: 3,
            prewarm: false,
        },
        ExchangeKind::ShardedRelay {
            shards: 2,
            prewarm: true,
        },
    ] {
        let sequential = run_bytes_k(kind, &values, 4, 4, 1);
        for k in [4usize, 16] {
            let windowed = run_bytes_k(kind, &values, 4, 4, k);
            assert_eq!(
                windowed, sequential,
                "{}: K={} output differs from the sequential data plane",
                kind, k
            );
        }
    }
}

/// Two identically-seeded pipeline runs must export byte-identical
/// traces, whichever exchange backend carries the shuffle — the sharded
/// fleet's hashed routing and background boots included.
#[test]
fn same_seed_runs_are_trace_deterministic_for_every_backend() {
    let kinds = ExchangeKind::ALL.into_iter().chain([
        ExchangeKind::ShardedRelay {
            shards: 4,
            prewarm: false,
        },
        ExchangeKind::ShardedRelay {
            shards: 4,
            prewarm: true,
        },
    ]);
    for kind in kinds {
        let traced = || {
            let mut cfg = PipelineConfig::paper_table1();
            cfg.mode = PipelineMode::PureServerless;
            cfg.physical_records = 15_000;
            cfg.exchange = kind;
            // Pin a parallel data plane: determinism must hold with
            // windowed I/O, not just the sequential fallback.
            cfg.io_concurrency = 4;
            cfg.trace = true;
            run_methcomp_pipeline(&cfg).expect("pipeline ok")
        };
        let a = traced();
        let b = traced();
        assert!(a.verified, "{}: output must verify", kind);
        assert_eq!(
            chrome_trace_json(&a.trace),
            chrome_trace_json(&b.trace),
            "{}: chrome export must be byte-identical",
            kind
        );
        assert_eq!(
            counters_csv(&a.trace),
            counters_csv(&b.trace),
            "{}: counter export must be byte-identical",
            kind
        );
        assert_eq!(a.latency, b.latency, "{}: same-seed latency", kind);
        assert_eq!(a.cost.total(), b.cost.total(), "{}: same-seed cost", kind);
    }
}

/// An end-to-end sharded run provisions (and bills) one VM per shard,
/// and a pre-warmed run is strictly faster than a cold one of the same
/// shape — the boot overlaps the sample phase instead of serializing in
/// front of it.
#[test]
fn sharded_pipeline_bills_every_shard_and_prewarm_is_faster() {
    let run = |prewarm: bool| {
        let mut cfg = PipelineConfig::paper_table1();
        cfg.mode = PipelineMode::PureServerless;
        cfg.physical_records = 15_000;
        cfg.exchange = ExchangeKind::ShardedRelay { shards: 2, prewarm };
        cfg.trace = true;
        run_methcomp_pipeline(&cfg).expect("pipeline ok")
    };
    let cold = run(false);
    let warm = run(true);
    assert!(cold.verified && warm.verified, "both runs verify");
    for outcome in [&cold, &warm] {
        let vms = outcome
            .trace
            .spans
            .iter()
            .filter(|s| s.category == Category::VmTask)
            .count();
        assert_eq!(vms, 2, "one VM task (and billing span) per shard");
    }
    assert!(
        warm.cost.vm > Money::ZERO,
        "shard VM seconds land in the cost report"
    );
    assert!(
        warm.latency < cold.latency,
        "prewarm must hide boot time: warm {:?} vs cold {:?}",
        warm.latency,
        cold.latency
    );
}
