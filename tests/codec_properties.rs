//! Property-based tests of every codec: round-trip losslessness under
//! arbitrary inputs, plus structural invariants of the coding tables.

use proptest::collection::vec;
use proptest::prelude::*;

use faaspipe::codec::bitio::{BitReader, BitWriter};
use faaspipe::codec::range::{ByteModel, Order1Model, RangeDecoder, RangeEncoder, UIntModel};
use faaspipe::codec::{gzipish, huffman, rle, varint};
use faaspipe::methcomp::codec as mc;
use faaspipe::methcomp::{Dataset, MethRecord, Strand};

proptest! {
    #[test]
    fn gzipish_round_trips_arbitrary_bytes(data in vec(any::<u8>(), 0..20_000)) {
        let packed = gzipish::compress(&data);
        let unpacked = gzipish::decompress(&packed).expect("round trip");
        prop_assert_eq!(unpacked, data);
    }

    #[test]
    fn gzipish_round_trips_repetitive_bytes(
        seed in vec(any::<u8>(), 1..64),
        reps in 1usize..400,
    ) {
        let data: Vec<u8> = seed.iter().cycle().take(seed.len() * reps).copied().collect();
        let packed = gzipish::compress(&data);
        prop_assert_eq!(gzipish::decompress(&packed).expect("round trip"), data);
    }

    #[test]
    fn varint_round_trips(values in vec(any::<u64>(), 0..500)) {
        let mut buf = Vec::new();
        for &v in &values {
            varint::write_u64(&mut buf, v);
        }
        let mut r = varint::VarintReader::new(&buf);
        for &v in &values {
            prop_assert_eq!(r.u64().expect("valid"), v);
        }
        prop_assert!(r.is_empty());
    }

    #[test]
    fn signed_varint_round_trips(values in vec(any::<i64>(), 0..500)) {
        let mut buf = Vec::new();
        for &v in &values {
            varint::write_i64(&mut buf, v);
        }
        let mut r = varint::VarintReader::new(&buf);
        for &v in &values {
            prop_assert_eq!(r.i64().expect("valid"), v);
        }
    }

    #[test]
    fn zigzag_is_a_bijection(v in any::<i64>()) {
        prop_assert_eq!(varint::unzigzag(varint::zigzag(v)), v);
    }

    #[test]
    fn rle_round_trips(data in vec(any::<u8>(), 0..10_000)) {
        let packed = rle::compress(&data);
        prop_assert_eq!(rle::decompress(&packed, 1 << 24).expect("round trip"), data);
    }

    #[test]
    fn bitio_round_trips(ops in vec((any::<u64>(), 1u32..57), 0..300)) {
        let mut w = BitWriter::new();
        for &(v, n) in &ops {
            w.write_bits(v & ((1u64 << n) - 1), n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &ops {
            prop_assert_eq!(r.read_bits(n).expect("bits"), v & ((1u64 << n) - 1));
        }
    }

    #[test]
    fn huffman_codes_round_trip_for_any_histogram(
        freqs in vec(0u64..10_000, 2..64),
    ) {
        let lengths = huffman::build_lengths(&freqs, 15);
        let live: Vec<usize> = freqs
            .iter()
            .enumerate()
            .filter(|(_, &f)| f > 0)
            .map(|(i, _)| i)
            .collect();
        if live.is_empty() {
            prop_assert!(lengths.iter().all(|&l| l == 0));
            return Ok(());
        }
        prop_assert!(huffman::kraft_ok(&lengths));
        prop_assert!(lengths.iter().all(|&l| l <= 15));
        let enc = huffman::Encoder::from_lengths(&lengths).expect("encoder");
        let dec = huffman::Decoder::from_lengths(&lengths).expect("decoder");
        let mut w = BitWriter::new();
        for &s in &live {
            enc.encode(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in &live {
            prop_assert_eq!(dec.decode(&mut r).expect("symbol"), s);
        }
    }

    #[test]
    fn range_models_round_trip(bytes in vec(any::<u8>(), 0..4_000), ints in vec(any::<u64>(), 0..500)) {
        let mut enc = RangeEncoder::new();
        let mut bm = ByteModel::new();
        let mut om = Order1Model::new();
        let mut um = UIntModel::new();
        for &b in &bytes {
            bm.encode(&mut enc, b);
            om.encode(&mut enc, b);
        }
        for &v in &ints {
            um.encode(&mut enc, v);
        }
        let packed = enc.finish();
        let mut dec = RangeDecoder::new(&packed).expect("stream");
        let mut bm = ByteModel::new();
        let mut om = Order1Model::new();
        let mut um = UIntModel::new();
        for &b in &bytes {
            prop_assert_eq!(bm.decode(&mut dec).expect("byte"), b);
            prop_assert_eq!(om.decode(&mut dec).expect("byte"), b);
        }
        for &v in &ints {
            prop_assert_eq!(um.decode(&mut dec).expect("uint"), v);
        }
    }
}

prop_compose! {
    fn arb_record()(
        chrom in 0u8..24,
        start in 0u64..250_000_000,
        width in 0u64..3,
        minus in any::<bool>(),
        coverage in 0u32..100_000,
        meth_pct in 0u8..=100,
    ) -> MethRecord {
        MethRecord {
            chrom,
            start,
            end: start + width + 1,
            strand: if minus { Strand::Minus } else { Strand::Plus },
            coverage,
            meth_pct,
        }
    }
}

proptest! {
    #[test]
    fn methcomp_round_trips_arbitrary_records(records in vec(arb_record(), 0..2_000)) {
        let ds = Dataset::new(records);
        let packed = mc::compress(&ds);
        prop_assert_eq!(mc::decompress(&packed).expect("round trip"), ds);
    }

    #[test]
    fn methcomp_round_trips_sorted_records(records in vec(arb_record(), 0..2_000)) {
        let mut ds = Dataset::new(records);
        ds.sort();
        let packed = mc::compress(&ds);
        let got = mc::decompress(&packed).expect("round trip");
        prop_assert_eq!(&got, &ds);
        // And the canonical text layer round-trips too.
        prop_assert_eq!(got.to_text(), ds.to_text());
    }

    #[test]
    fn bed_text_round_trips(records in vec(arb_record(), 0..300)) {
        let ds = Dataset::new(records);
        let text = ds.to_text();
        let parsed = Dataset::from_text(&text).expect("parse");
        prop_assert_eq!(parsed, ds);
    }

    #[test]
    fn methcomp_decompress_never_panics_on_garbage(data in vec(any::<u8>(), 0..2_000)) {
        // Arbitrary bytes must be rejected or decode to something; the
        // decoder must never panic.
        let _ = mc::decompress(&data);
    }

    #[test]
    fn gzipish_decompress_never_panics_on_garbage(data in vec(any::<u8>(), 0..2_000)) {
        let _ = gzipish::decompress(&data);
    }
}
