//! Property-based tests of the shuffle operator: partitioner laws, the
//! end-to-end "sort is a sorted permutation" invariant under random data
//! and worker counts, and agreement between the serverless and VM paths.

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use proptest::collection::vec;
use proptest::prelude::*;

use faaspipe::des::{Sim, SimDuration};
use faaspipe::faas::{FaasConfig, FunctionPlatform};
use faaspipe::shuffle::{
    serverless_sort, vm_sort, RangePartitioner, SortConfig, SortRecord, VmSortConfig,
};
use faaspipe::store::{ObjectStore, StoreConfig};
use faaspipe::vm::VmFleet;

proptest! {
    #[test]
    fn partitioner_is_monotone_and_total(
        sample in vec(any::<u64>(), 0..2_000),
        parts in 1usize..64,
        probes in vec(any::<u64>(), 0..500),
    ) {
        let p = RangePartitioner::from_sample(sample, parts);
        prop_assert!(p.parts() >= 1 && p.parts() <= parts);
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        let mut last = 0;
        for k in &sorted {
            let part = p.part(k);
            prop_assert!(part < p.parts());
            prop_assert!(part >= last, "monotone routing");
            last = part;
        }
        // Equal keys always land in the same partition.
        for k in &probes {
            prop_assert_eq!(p.part(k), p.part(k));
        }
    }
}

fn serverless_output(values: &[u64], chunks: usize, workers: usize) -> Vec<u64> {
    let mut sim = Sim::new();
    let store = ObjectStore::install(&mut sim, StoreConfig::default());
    let faas = FunctionPlatform::install(&mut sim, FaasConfig::default());
    store.create_bucket("data").expect("bucket");
    let per = values.len().div_ceil(chunks).max(1);
    for (i, chunk) in values.chunks(per).enumerate() {
        store
            .put_untimed(
                "data",
                &format!("in/{:04}", i),
                Bytes::from(SortRecord::write_all(chunk)),
            )
            .expect("stage");
    }
    let out: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let out2 = Arc::clone(&out);
    let store2 = Arc::clone(&store);
    sim.spawn("driver", move |ctx| {
        let cfg = SortConfig {
            workers,
            ..SortConfig::default()
        };
        let stats = serverless_sort::<u64>(ctx, &faas, &store2, &cfg).expect("sort");
        let client = store2.connect(ctx, "verify");
        for run in &stats.runs {
            let data = client.get(ctx, "data", run).expect("run");
            out2.lock()
                .extend(<u64 as SortRecord>::read_all(&data).expect("decode"));
        }
    });
    sim.run().expect("sim ok");
    let v = out.lock().clone();
    v
}

fn vm_output(values: &[u64], chunks: usize, runs: usize) -> Vec<u64> {
    let mut sim = Sim::new();
    let store = ObjectStore::install(&mut sim, StoreConfig::default());
    let fleet = VmFleet::new();
    store.create_bucket("data").expect("bucket");
    let per = values.len().div_ceil(chunks).max(1);
    for (i, chunk) in values.chunks(per).enumerate() {
        store
            .put_untimed(
                "data",
                &format!("in/{:04}", i),
                Bytes::from(SortRecord::write_all(chunk)),
            )
            .expect("stage");
    }
    let out: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let out2 = Arc::clone(&out);
    let store2 = Arc::clone(&store);
    sim.spawn("driver", move |ctx| {
        let cfg = VmSortConfig {
            runs,
            ..VmSortConfig::default()
        };
        let stats = vm_sort::<u64>(ctx, &fleet, &store2, &cfg).expect("sort");
        let client = store2.connect(ctx, "verify");
        for run in &stats.runs {
            let data = client.get(ctx, "data", run).expect("run");
            out2.lock()
                .extend(<u64 as SortRecord>::read_all(&data).expect("decode"));
        }
    });
    sim.run().expect("sim ok");
    let v = out.lock().clone();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The serverless sort is a *sorted permutation* of its input for any
    /// data, chunking, and worker count.
    #[test]
    fn serverless_sort_is_a_sorted_permutation(
        values in vec(any::<u64>(), 1..3_000),
        chunks in 1usize..6,
        workers in 1usize..10,
    ) {
        let got = serverless_output(&values, chunks, workers);
        let mut expect = values.clone();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// The VM path computes the identical answer.
    #[test]
    fn vm_sort_agrees_with_serverless(
        values in vec(any::<u64>(), 1..2_000),
        chunks in 1usize..4,
    ) {
        let a = serverless_output(&values, chunks, 4);
        let b = vm_output(&values, chunks, 4);
        prop_assert_eq!(a, b);
    }
}

/// Timing sanity under the default model: more workers strictly help a
/// bandwidth-bound shuffle at this size.
#[test]
fn more_workers_reduce_latency_when_bandwidth_bound() {
    fn latency(workers: usize) -> SimDuration {
        let values: Vec<u64> = (0..60_000u64).map(|i| (i * 48_271) % 1_000_003).collect();
        let mut sim = Sim::new();
        let store = ObjectStore::install(&mut sim, StoreConfig::default().with_size_scale(1_000.0));
        let faas = FunctionPlatform::install(&mut sim, FaasConfig::default());
        store.create_bucket("data").expect("bucket");
        for (i, chunk) in values.chunks(7_500).enumerate() {
            store
                .put_untimed(
                    "data",
                    &format!("in/{:04}", i),
                    Bytes::from(SortRecord::write_all(chunk)),
                )
                .expect("stage");
        }
        let out: Arc<Mutex<Option<SimDuration>>> = Arc::new(Mutex::new(None));
        let out2 = Arc::clone(&out);
        let store2 = Arc::clone(&store);
        sim.spawn("driver", move |ctx| {
            let cfg = SortConfig {
                workers,
                work: faaspipe::shuffle::WorkModel::default().with_size_scale(1_000.0),
                ..SortConfig::default()
            };
            let stats = serverless_sort::<u64>(ctx, &faas, &store2, &cfg).expect("sort");
            *out2.lock() = Some(stats.total_duration());
        });
        sim.run().expect("sim ok");
        let d = out.lock().take().expect("ran");
        d
    }
    let two = latency(2);
    let eight = latency(8);
    assert!(
        eight < two,
        "8 workers ({}) must beat 2 workers ({}) on a bandwidth-bound shuffle",
        eight,
        two
    );
}
